// Vectorized transcendental kernels (exp / tanh / sigmoid) plus the dual
// scalar+vector functors tensor/ops.cc and ir/registry.cc feed to the
// elementwise maps.
//
// ExpV is the classic Cephes single-precision expf: range-clamp, split
// x = n*ln2 + r with a Cody-Waite two-constant reduction, a degree-5
// polynomial for e^r on |r| <= ln2/2, and a 2^n scale built straight in
// the exponent field (Vec::Pow2). Max relative error is ~2 ulp across the
// clamp range, and ExpV(0) == 1 exactly (the polynomial collapses to
// 1 + 0), so SigmoidV(0) == 0.5 exactly like the scalar kernel.
//
// All three are lane-independent, so the partial-vector tail rule of
// simd.h applies unchanged. On the scalar build (kEnabled == false) the
// functors' scalar overloads are the only instantiated path and match the
// legacy kernels expression-for-expression — scalar builds stay
// bit-identical to the pre-SIMD library.

#ifndef STWA_SIMD_VEC_MATH_H_
#define STWA_SIMD_VEC_MATH_H_

#include <cmath>

#include "simd/simd.h"

namespace stwa {
namespace simd {

/// e^x per lane (Cephes polynomial; ~2 ulp, clamped to the finite range).
inline Vec ExpV(Vec x) {
  x = Vec::Min(x, Vec::Broadcast(88.3762626647950f));
  x = Vec::Max(x, Vec::Broadcast(-87.3365478515625f));
  // n = round(x / ln2); r = x - n*ln2 via two-constant Cody-Waite so the
  // reduction is exact to well below float epsilon.
  const Vec n = Vec::RoundNearest(x * Vec::Broadcast(1.44269504088896341f));
  x = Vec::Fma(n, Vec::Broadcast(-0.693359375f), x);
  x = Vec::Fma(n, Vec::Broadcast(2.12194440e-4f), x);
  // e^r = 1 + r + r^2 * P(r), P a degree-4 polynomial in Horner form.
  const Vec z = x * x;
  Vec p = Vec::Broadcast(1.9875691500e-4f);
  p = Vec::Fma(p, x, Vec::Broadcast(1.3981999507e-3f));
  p = Vec::Fma(p, x, Vec::Broadcast(8.3334519073e-3f));
  p = Vec::Fma(p, x, Vec::Broadcast(4.1665795894e-2f));
  p = Vec::Fma(p, x, Vec::Broadcast(1.6666665459e-1f));
  p = Vec::Fma(p, x, Vec::Broadcast(5.0000001201e-1f));
  p = Vec::Fma(p, z, x + Vec::Broadcast(1.0f));
  return p * Vec::Pow2(n);
}

/// tanh per lane via the exp identity: tanh(|x|) = 1 - 2/(e^(2|x|) + 1),
/// sign restored with CopySign. Exact 0 at x == 0; saturates to ±1 once
/// e^(2|x|) overflows float precision (|x| >~ 9), like std::tanh.
inline Vec TanhV(Vec x) {
  const Vec a = Vec::Abs(x);
  const Vec e = ExpV(a + a);
  const Vec t = Vec::Broadcast(1.0f) -
                Vec::Broadcast(2.0f) / (e + Vec::Broadcast(1.0f));
  return Vec::CopySign(t, x);
}

/// logistic sigmoid per lane: 1 / (1 + e^-x).
inline Vec SigmoidV(Vec x) {
  return Vec::Broadcast(1.0f) /
         (Vec::Broadcast(1.0f) + ExpV(Vec::Zero() - x));
}

// --- Dual scalar/vector functors ----------------------------------------
//
// The scalar overload is the legacy kernel expression (what scalar builds
// compile); the Vec overload is what SIMD builds compile through the
// vectorized maps. Arithmetic functors are bit-identical between the two;
// the transcendental ones differ in low-order bits (std:: vs polynomial).

struct ExpOp {
  float operator()(float x) const { return std::exp(x); }
  Vec operator()(Vec x) const { return ExpV(x); }
};

struct TanhOp {
  float operator()(float x) const { return std::tanh(x); }
  Vec operator()(Vec x) const { return TanhV(x); }
};

struct SigmoidOp {
  float operator()(float x) const { return 1.0f / (1.0f + std::exp(-x)); }
  Vec operator()(Vec x) const { return SigmoidV(x); }
};

struct SqrtOp {
  float operator()(float x) const { return std::sqrt(x); }
  Vec operator()(Vec x) const { return Vec::Sqrt(x); }
};

struct AbsOp {
  float operator()(float x) const { return std::fabs(x); }
  Vec operator()(Vec x) const { return Vec::Abs(x); }
};

struct NegOp {
  float operator()(float x) const { return -x; }
  Vec operator()(Vec x) const { return Vec::Zero() - x; }
};

struct SquareOp {
  float operator()(float x) const { return x * x; }
  Vec operator()(Vec x) const { return x * x; }
};

struct ReluOp {
  float operator()(float x) const { return x > 0.0f ? x : 0.0f; }
  Vec operator()(Vec x) const { return Vec::Max(x, Vec::Zero()); }
};

struct AddScalarOp {
  float s;
  float operator()(float x) const { return x + s; }
  Vec operator()(Vec x) const { return x + Vec::Broadcast(s); }
};

struct MulScalarOp {
  float s;
  float operator()(float x) const { return x * s; }
  Vec operator()(Vec x) const { return x * Vec::Broadcast(s); }
};

struct AddOp {
  float operator()(float x, float y) const { return x + y; }
  Vec operator()(Vec x, Vec y) const { return x + y; }
};

struct SubOp {
  float operator()(float x, float y) const { return x - y; }
  Vec operator()(Vec x, Vec y) const { return x - y; }
};

struct MulOp {
  float operator()(float x, float y) const { return x * y; }
  Vec operator()(Vec x, Vec y) const { return x * y; }
};

struct DivOp {
  float operator()(float x, float y) const { return x / y; }
  Vec operator()(Vec x, Vec y) const { return x / y; }
};

struct MaxOp {
  float operator()(float x, float y) const { return std::max(x, y); }
  Vec operator()(Vec x, Vec y) const { return Vec::Max(x, y); }
};

struct MinOp {
  float operator()(float x, float y) const { return std::min(x, y); }
  Vec operator()(Vec x, Vec y) const { return Vec::Min(x, y); }
};

}  // namespace simd
}  // namespace stwa

#endif  // STWA_SIMD_VEC_MATH_H_
