// Reduced-precision GEMM: prepacked bf16 / int8 weight panels and the
// microkernels that consume them (DESIGN.md §4g).
//
// Both tiers narrow only the *weight* (op(B)) operand of C = op(A) @ op(B);
// activations and C stay fp32:
//   * bf16 — weights packed as 16-bit truncated/rounded binary32 panels,
//     widened back to fp32 inside the microkernel; every C element is the
//     same k-ascending fma(a, widen(b), acc) chain as a scalar loop using
//     simd::MulAddRef, so the kernel is bit-identical to GemmBf16Ref
//     within one build.
//   * int8 — weights quantized per output channel (symmetric); activations
//     quantized per op(A) row on the fly; the multiply-accumulate is exact
//     integer arithmetic (dpbusd with an unsigned-offset correction,
//     pmaddwd on plain AVX2, or a scalar loop — all produce the same
//     int32 dot), so the integer part is bit-identical across ISA tiers
//     and the only rounding is the fixed-order fp32 dequant of the C tile.
//
// Panels are packed once (PackWeights — serving sessions do this at open
// and cache the result, see tensor/lowp_cache.h); the per-call cost is
// A-side only. Panel layout is build-specific (panel width kLowpNR), so
// packs must never be serialized — only the int8 scales are (serialize
// v3 metadata).
//
// Determinism: all loops assign work by index (panel jp covers columns
// [jp*NR, jp*NR+NR)), C tiles are disjoint, and K is never split across
// threads, so results are bit-identical across thread counts, batching
// and plan/fusion modes within one build — the same contract as
// simd/gemm.h, per tier.

#ifndef STWA_SIMD_GEMM_LOWP_H_
#define STWA_SIMD_GEMM_LOWP_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "simd/lowp.h"
#include "simd/simd.h"

namespace stwa {
namespace simd {

/// int8 quantisation range: symmetric [-127, 127] (scale = absmax / 127).
constexpr int kInt8QMax = 127;

/// Weight panels for one GEMM weight operand in one precision tier.
/// Logical shape is op(B) = [k, n] (n = output channels); `trans` records
/// that the source buffer was stored [n, k] (the MatMulNT orientation).
struct PackedWeights {
  Precision tier = Precision::kFp32;
  int64_t k = 0;
  int64_t n = 0;
  bool trans = false;
  int64_t nr = 0;  ///< panel width the build packed with (kLowpNR)

  /// bf16 tier: num_panels x [k][nr] zero-padded column panels.
  std::vector<uint16_t> bf16;

  /// int8 tier, quad layout: num_panels x [ceil(k/4)][nr*4] — for each
  /// panel column, 4 consecutive k values are adjacent bytes (the dpbusd
  /// operand order); zero-padded in both k and n.
  std::vector<int8_t> q8;
  /// int8 tier, pair layout widened to i16 for the AVX2 pmaddwd kernel:
  /// num_panels x [ceil(k/2)][nr*2]. Only populated on that build tier.
  std::vector<int16_t> q16;
  /// Per output channel: dequant scale (absmax/127) and column sum of the
  /// quantized weights (the unsigned-offset correction term). Length n.
  std::vector<float> scales;
  std::vector<int32_t> colsum;

  int64_t num_panels() const { return (n + nr - 1) / nr; }
  /// Bytes held by the packed panels (footprint accounting).
  int64_t PanelBytes() const;
};

/// Per-output-channel absmax of a [k, n] (or [n, k] with trans) weight
/// buffer; length n. This is the quantity checkpoint save bakes scales
/// from, so it is shared between save-time and open-time scale paths.
std::vector<float> ChannelAbsMax(const float* b, int64_t k, int64_t n,
                                 bool trans);

/// Per-channel symmetric int8 scales: Int8Scale(absmax_j, kInt8QMax).
std::vector<float> Int8ChannelScales(const float* b, int64_t k, int64_t n,
                                     bool trans);

/// Packs a weight buffer into panels for `tier` (kBf16 or kInt8).
/// For int8, `scales` supplies baked per-channel scales (length n); pass
/// nullptr to compute them from the buffer (bit-identical to the baked
/// path — same formula over the same floats). For bf16, `bf16_trunc`
/// selects truncate-pack over the round-to-nearest-even default.
std::shared_ptr<PackedWeights> PackWeights(const float* b, int64_t k,
                                           int64_t n, bool trans,
                                           Precision tier,
                                           const std::vector<float>* scales,
                                           bool bf16_trunc);

/// C[m, n] = op(A) @ op(B) with op(B) prepacked; op(A) is a[m, k] (or
/// a[k, m] with trans_a). Writes every C element (safe on uninit storage).
/// Parallelises internally; deterministic per the header contract.
void GemmLowp(const float* a, const PackedWeights& w, float* c, int64_t m,
              bool trans_a);

/// Scalar references (always compiled; tests pin the kernels to these).
/// GemmBf16Ref accumulates with simd::MulAddRef so it is bit-exact vs the
/// vector kernel within one build; GemmInt8Ref reproduces the kernels'
/// exact integer dots and fixed-order dequant.
void GemmBf16Ref(const float* a, const PackedWeights& w, float* c,
                 int64_t m, bool trans_a);
void GemmInt8Ref(const float* a, const PackedWeights& w, float* c,
                 int64_t m, bool trans_a);

/// Name of the int8/bf16 kernel variant this build dispatches to
/// ("avx512-vnni", "avx512f", "avx2", "scalar") — bench/banner metadata.
const char* LowpKernelName();

}  // namespace simd
}  // namespace stwa

#endif  // STWA_SIMD_GEMM_LOWP_H_
