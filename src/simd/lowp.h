// Reduced-precision value helpers: the serving precision tiers and the
// scalar bf16 / int8 conversion primitives the low-precision GEMM kernels
// (simd/gemm_lowp.h) are built on.
//
// Tiers (DESIGN.md §4g):
//   * fp32 — the default; every kernel in the library.
//   * bf16 — weights stored as the upper 16 bits of binary32, widened back
//     to fp32 in the GEMM microkernel; accumulation stays fp32.
//   * int8 — weights quantized per output channel (symmetric, scale =
//     absmax / 127); activations quantized per row on the fly; integer
//     multiply-accumulate with fp32 dequantisation of the C tile.
//
// Both narrow tiers are inference-only: they apply to GEMM *weight*
// operands registered by a serving session (tensor/lowp_cache.h) and never
// change training numerics.
//
// bf16 rounding: `Bf16FromF32` rounds to nearest-even (the default pack
// mode); `Bf16FromF32Trunc` truncates toward zero. Truncation is cheaper
// but biased — every mantissa is shortened toward zero, so dot products
// lose magnitude systematically (~2^-10 relative per weight), and the bias
// compounds across stacked layers instead of cancelling. RNE is unbiased
// and keeps the serving accuracy delta an order of magnitude smaller for
// the same storage cost, which is why it is the pack default
// (STWA_BF16_TRUNC=1 flips a session to truncate-pack for A/B runs; the
// lowp unit tests quantify both). NaNs are quietened before truncation so
// a truncated NaN cannot become Inf.

#ifndef STWA_SIMD_LOWP_H_
#define STWA_SIMD_LOWP_H_

#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>

namespace stwa {
namespace simd {

/// Serving GEMM precision tier.
enum class Precision { kFp32, kBf16, kInt8 };

/// Canonical lowercase tier name ("fp32" / "bf16" / "int8").
const char* PrecisionName(Precision p);

/// Parses a tier name (case-sensitive, the three canonical names).
/// Throws stwa::Error on anything else, listing the accepted values.
Precision ParsePrecision(const std::string& name);

/// The STWA_PRECISION environment tier; fp32 when unset. Throws on an
/// unrecognised value (a typo silently serving fp32 would be worse).
Precision EnvPrecision();

/// Bytes one weight scalar occupies in a tier's packed panels (4/2/1).
int64_t WeightBytes(Precision p);

// --- bf16 ----------------------------------------------------------------

/// binary32 -> bf16 (upper 16 bits), round-to-nearest-even.
inline uint16_t Bf16FromF32(float x) {
  uint32_t bits;
  std::memcpy(&bits, &x, sizeof(bits));
  if ((bits & 0x7FFFFFFFu) > 0x7F800000u) {
    // NaN: quieten and keep the payload's top bits so the result is still
    // a NaN after truncation.
    return static_cast<uint16_t>((bits >> 16) | 0x0040u);
  }
  // Round to nearest-even on bit 16: add 0x7FFF + lsb-of-result.
  const uint32_t lsb = (bits >> 16) & 1u;
  return static_cast<uint16_t>((bits + 0x7FFFu + lsb) >> 16);
}

/// binary32 -> bf16, truncation toward zero (drop the low 16 bits).
inline uint16_t Bf16FromF32Trunc(float x) {
  uint32_t bits;
  std::memcpy(&bits, &x, sizeof(bits));
  if ((bits & 0x7FFFFFFFu) > 0x7F800000u) {
    return static_cast<uint16_t>((bits >> 16) | 0x0040u);
  }
  return static_cast<uint16_t>(bits >> 16);
}

/// bf16 -> binary32 (exact: shift back into the upper half).
inline float F32FromBf16(uint16_t x) {
  const uint32_t bits = static_cast<uint32_t>(x) << 16;
  float out;
  std::memcpy(&out, &bits, sizeof(out));
  return out;
}

// --- int8 ----------------------------------------------------------------

/// Symmetric quantisation scale for a value range: absmax / qmax. A zero,
/// denormal-underflowed or non-finite absmax yields scale 0, which the
/// quantiser treats as "every value quantises to 0" (dequantisation then
/// reproduces an all-zero channel exactly and never divides).
inline float Int8Scale(float absmax, int qmax) {
  if (!std::isfinite(absmax) || absmax <= 0.0f) return 0.0f;
  const float scale = absmax / static_cast<float>(qmax);
  return scale > 0.0f && std::isfinite(scale) ? scale : 0.0f;
}

/// Quantises one value with `scale` (from Int8Scale), clamping to
/// [-qmax, qmax]. Rounds to nearest-even to keep the error unbiased.
/// NaN quantises to 0 (a float->int cast of NaN or Inf is undefined, so
/// both are handled before the cast).
inline int8_t QuantizeInt8(float x, float scale, int qmax) {
  if (scale == 0.0f) return 0;
  const float q = std::nearbyintf(x / scale);
  if (std::isnan(q)) return 0;
  const float lim = static_cast<float>(qmax);
  const float clamped = q < -lim ? -lim : (q > lim ? lim : q);
  return static_cast<int8_t>(clamped);
}

}  // namespace simd
}  // namespace stwa

#endif  // STWA_SIMD_LOWP_H_
