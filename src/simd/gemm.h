// SIMD GEMM kernels behind tensor/ops.cc's MatMul2D / MatMul / MatMulNT /
// MatMulTN.
//
// Two tiers, both writing every output element (safe on Tensor::Uninit
// storage):
//   * row kernels (GemmRows*): register-blocked broadcast-FMA (NN/TN) or
//     lane-accumulator dot (NT) over a row range — the batched matmul
//     drivers call these per (batch, row-chunk);
//   * a packed, cache-blocked path (Gemm2D above the threshold): op(B) is
//     packed into kNR-wide zero-padded panels in pool-backed scratch once
//     per K block, op(A) into an MR x KC stack tile, and a register-tiled
//     kMR x kNR FMA microkernel sweeps the panels.
//
// Determinism: for every C element the multiply-accumulate chain is the
// same k-ascending Vec::Fma sequence in both tiers' NN/TN paths — K
// blocking resumes the chain by loading the partial C value back into the
// accumulator, which is exact — so packed and row results are
// bit-identical there, equal to a scalar loop accumulating with
// simd::MulAddRef. The NT dot kernel distributes k across fixed lanes
// instead (compared under tolerance against references). All tails use
// partial vector loads/stores, so results never depend on chunk
// boundaries or thread count. Kernel selection depends only on the shape.

#ifndef STWA_SIMD_GEMM_H_
#define STWA_SIMD_GEMM_H_

#include <cstdint>

#include "simd/simd.h"

namespace stwa {
namespace simd {

/// Register-tile geometry (exposed for the bench/tests).
constexpr int64_t kGemmMR = 6;
constexpr int64_t kGemmNR = 2 * Vec::kWidth;
constexpr int64_t kGemmKC = 512;

/// C[i,:] = A[i,:] @ B for rows i in [i0, i1); A is [m,k], B is [k,n],
/// all row-major contiguous.
void GemmRowsNN(const float* a, const float* b, float* c, int64_t i0,
                int64_t i1, int64_t k, int64_t n);

/// C[i,j] = dot(A[i,:], B[j,:]) for rows i in [i0, i1); A is [m,k], B is
/// [n,k] (i.e. C = A @ B^T without materialising the transpose).
void GemmRowsNT(const float* a, const float* b, float* c, int64_t i0,
                int64_t i1, int64_t k, int64_t n);

/// C[i,j] = sum_kk A[kk,i] * B[kk,j] for rows i in [i0, i1); A is [k,m],
/// B is [k,n] (i.e. C = A^T @ B without materialising the transpose).
void GemmRowsTN(const float* a, const float* b, float* c, int64_t i0,
                int64_t i1, int64_t k, int64_t m, int64_t n);

/// True when Gemm2D takes the packed cache-blocked path for this shape.
bool GemmUsesPackedPath(int64_t m, int64_t n, int64_t k);

/// Full parallel 2-D GEMM: C[m,n] = op(A) @ op(B), where op(A) is A[m,k]
/// (or A[k,m] with trans_a) and op(B) is B[k,n] (or B[n,k] with trans_b).
/// Dispatches packed vs row kernels on the shape alone; parallelises
/// internally via runtime::ParallelFor. trans_a && trans_b is unsupported.
void Gemm2D(const float* a, const float* b, float* c, int64_t m, int64_t n,
            int64_t k, bool trans_a, bool trans_b);

}  // namespace simd
}  // namespace stwa

#endif  // STWA_SIMD_GEMM_H_
