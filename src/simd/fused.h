// Stage opcodes and the per-lane interpreter for the fused elementwise
// kernel (ops::FusedMap, emitted by the plan rewriter in ir/rewrite.cc).
//
// A fused chain is a short program of shape-preserving stages applied to
// one value stream: scalar arithmetic, vectorisable unaries, and
// same-shape binaries against a side input. FusedApply dispatches one
// stage to exactly the dual functors (vec_math.h) the standalone
// UnaryMap/BinaryMap kernels use, so a fused chain computes the same
// per-element bits as the unfused op sequence it replaces — on both the
// Vec path and the scalar (STWA_NO_SIMD) path. Log is deliberately not a
// fused opcode: it has no Vec kernel (stays scalar on every build), so
// fusing it would change which path computes it.
//
// All opcodes are lane-independent, so the simd.h partial-tail rule
// applies: the fused kernel's chunk/vector blocking may differ from the
// unfused kernels' without changing any element.

#ifndef STWA_SIMD_FUSED_H_
#define STWA_SIMD_FUSED_H_

#include <cstdint>

#include "simd/vec_math.h"

namespace stwa {
namespace simd {

/// One stage of a fused elementwise chain. Values are stable: plans store
/// them in OpAttrs::ints.
enum class FusedOp : int64_t {
  // Scalar arithmetic (reads the stage scalar).
  kAddScalar = 0,
  kMulScalar,
  // Unaries.
  kExp,
  kSqrt,
  kSquare,
  kAbs,
  kTanh,
  kSigmoid,
  kRelu,
  // Same-shape binaries (read a side input; kSub/kDiv honour `swapped`).
  kAdd,
  kSub,
  kMul,
  kDiv,
  kCount,
};

/// True for opcodes that read a side-input lane.
inline bool FusedOpIsBinary(FusedOp op) {
  return op >= FusedOp::kAdd && op < FusedOp::kCount;
}

/// Applies one stage to a lane (scalar overload — the STWA_NO_SIMD path
/// and the tail-free reference semantics). `side` is ignored for unary /
/// scalar stages; `swapped` means the chain value is the right operand
/// (side OP chain).
inline float FusedApply(FusedOp op, float x, float side, float scalar,
                        bool swapped) {
  switch (op) {
    case FusedOp::kAddScalar: return AddScalarOp{scalar}(x);
    case FusedOp::kMulScalar: return MulScalarOp{scalar}(x);
    case FusedOp::kExp: return ExpOp{}(x);
    case FusedOp::kSqrt: return SqrtOp{}(x);
    case FusedOp::kSquare: return SquareOp{}(x);
    case FusedOp::kAbs: return AbsOp{}(x);
    case FusedOp::kTanh: return TanhOp{}(x);
    case FusedOp::kSigmoid: return SigmoidOp{}(x);
    case FusedOp::kRelu: return ReluOp{}(x);
    case FusedOp::kAdd: return AddOp{}(x, side);
    case FusedOp::kSub: return swapped ? SubOp{}(side, x) : SubOp{}(x, side);
    case FusedOp::kMul: return MulOp{}(x, side);
    case FusedOp::kDiv: return swapped ? DivOp{}(side, x) : DivOp{}(x, side);
    case FusedOp::kCount: break;
  }
  return x;
}

/// Vector overload: same dispatch through the Vec sides of the dual
/// functors. Pad lanes of a partial tail may compute garbage (e.g. a
/// division by the 0 pad); they are masked on store and never read.
inline Vec FusedApply(FusedOp op, Vec x, Vec side, float scalar,
                      bool swapped) {
  switch (op) {
    case FusedOp::kAddScalar: return AddScalarOp{scalar}(x);
    case FusedOp::kMulScalar: return MulScalarOp{scalar}(x);
    case FusedOp::kExp: return ExpOp{}(x);
    case FusedOp::kSqrt: return SqrtOp{}(x);
    case FusedOp::kSquare: return SquareOp{}(x);
    case FusedOp::kAbs: return AbsOp{}(x);
    case FusedOp::kTanh: return TanhOp{}(x);
    case FusedOp::kSigmoid: return SigmoidOp{}(x);
    case FusedOp::kRelu: return ReluOp{}(x);
    case FusedOp::kAdd: return AddOp{}(x, side);
    case FusedOp::kSub: return swapped ? SubOp{}(side, x) : SubOp{}(x, side);
    case FusedOp::kMul: return MulOp{}(x, side);
    case FusedOp::kDiv: return swapped ? DivOp{}(side, x) : DivOp{}(x, side);
    case FusedOp::kCount: break;
  }
  return x;
}

}  // namespace simd
}  // namespace stwa

#endif  // STWA_SIMD_FUSED_H_
