// Portable SIMD abstraction: a fixed-width float vector selected at
// compile time.
//
// One ISA tier is chosen per build (widest first):
//   AVX2+FMA (8 lanes) -> SSE2 (4 lanes, fma = mul+add) -> NEON/aarch64
//   (4 lanes) -> scalar (1 lane).
// -DSTWA_NO_SIMD=1 (CMake option STWA_NO_SIMD) forces the scalar tier for
// A/B runs; under it kEnabled is false and tensor/ops.cc compiles its
// legacy scalar kernels, so a scalar build is bit-identical to the
// pre-SIMD library.
//
// Determinism contract (DESIGN.md §4e): every Vec operation is
// lane-independent except the Reduce* helpers, which combine lanes in a
// fixed pairwise tree. Kernels built on Vec must handle ragged tails with
// LoadPartial/StorePartial (the same vector instructions on a padded
// stack copy) rather than scalar remainder loops — ParallelFor chunk
// boundaries move with the thread count, and only lane-independent tails
// keep results bit-identical across chunkings. Which values the pad lanes
// hold never matters: they are masked off by StorePartial/MaskFirstN, or
// chosen as the reduction identity (0 for add with mul/fma, -inf for max).
//
// Within one build configuration results are bit-identical across thread
// counts, pool on/off and plan on/off. Across build configurations
// (SIMD vs STWA_NO_SIMD, or different ISA tiers) low-order bits may
// differ -- compare under tolerance, never memcmp.

#ifndef STWA_SIMD_SIMD_H_
#define STWA_SIMD_SIMD_H_

#include <cmath>
#include <concepts>
#include <cstdint>
#include <cstring>

#if defined(STWA_NO_SIMD)
// Forced scalar tier; no vector headers.
#elif defined(__AVX2__) && defined(__FMA__)
#define STWA_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(__SSE2__) || defined(_M_X64)
#define STWA_SIMD_SSE2 1
#include <emmintrin.h>
#elif defined(__aarch64__)
#define STWA_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace stwa {
namespace simd {

#if defined(STWA_SIMD_AVX2)

struct Vec {
  __m256 v;
  static constexpr int64_t kWidth = 8;

  static Vec Load(const float* p) { return {_mm256_loadu_ps(p)}; }
  void Store(float* p) const { _mm256_storeu_ps(p, v); }
  static Vec Broadcast(float x) { return {_mm256_set1_ps(x)}; }
  static Vec Zero() { return {_mm256_setzero_ps()}; }

  friend Vec operator+(Vec a, Vec b) { return {_mm256_add_ps(a.v, b.v)}; }
  friend Vec operator-(Vec a, Vec b) { return {_mm256_sub_ps(a.v, b.v)}; }
  friend Vec operator*(Vec a, Vec b) { return {_mm256_mul_ps(a.v, b.v)}; }
  friend Vec operator/(Vec a, Vec b) { return {_mm256_div_ps(a.v, b.v)}; }

  static Vec Min(Vec a, Vec b) { return {_mm256_min_ps(a.v, b.v)}; }
  static Vec Max(Vec a, Vec b) { return {_mm256_max_ps(a.v, b.v)}; }
  /// a*b + c with a single rounding (hardware FMA).
  static Vec Fma(Vec a, Vec b, Vec c) {
    return {_mm256_fmadd_ps(a.v, b.v, c.v)};
  }
  static Vec Sqrt(Vec a) { return {_mm256_sqrt_ps(a.v)}; }
  static Vec Abs(Vec a) {
    return {_mm256_andnot_ps(_mm256_set1_ps(-0.0f), a.v)};
  }
  /// Magnitude of `mag` with the sign bit of `sgn`.
  static Vec CopySign(Vec mag, Vec sgn) {
    const __m256 sign = _mm256_set1_ps(-0.0f);
    return {_mm256_or_ps(_mm256_andnot_ps(sign, mag.v),
                         _mm256_and_ps(sign, sgn.v))};
  }
  /// All-ones lane mask where a > b (a <= b), else all-zeros.
  static Vec CmpGt(Vec a, Vec b) {
    return {_mm256_cmp_ps(a.v, b.v, _CMP_GT_OQ)};
  }
  static Vec CmpLe(Vec a, Vec b) {
    return {_mm256_cmp_ps(a.v, b.v, _CMP_LE_OQ)};
  }
  /// Lane-wise mask ? a : b.
  static Vec Select(Vec mask, Vec a, Vec b) {
    return {_mm256_blendv_ps(b.v, a.v, mask.v)};
  }
  /// Round to nearest (ties to even); |x| must be < 2^31.
  static Vec RoundNearest(Vec a) {
    return {_mm256_round_ps(a.v, _MM_FROUND_TO_NEAREST_INT |
                                     _MM_FROUND_NO_EXC)};
  }
  /// 2^n for integral-valued lanes n in [-126, 127] (exponent-field build).
  static Vec Pow2(Vec n) {
    const __m256i ni = _mm256_cvtps_epi32(n.v);
    const __m256i e =
        _mm256_slli_epi32(_mm256_add_epi32(ni, _mm256_set1_epi32(127)), 23);
    return {_mm256_castsi256_ps(e)};
  }
};

inline const char* IsaName() { return "avx2-fma"; }
constexpr bool kEnabled = true;
/// True when Vec::Fma contracts to a single-rounding hardware FMA (test
/// references must accumulate with std::fmaf to match bitwise).
constexpr bool kHasFma = true;

#elif defined(STWA_SIMD_SSE2)

struct Vec {
  __m128 v;
  static constexpr int64_t kWidth = 4;

  static Vec Load(const float* p) { return {_mm_loadu_ps(p)}; }
  void Store(float* p) const { _mm_storeu_ps(p, v); }
  static Vec Broadcast(float x) { return {_mm_set1_ps(x)}; }
  static Vec Zero() { return {_mm_setzero_ps()}; }

  friend Vec operator+(Vec a, Vec b) { return {_mm_add_ps(a.v, b.v)}; }
  friend Vec operator-(Vec a, Vec b) { return {_mm_sub_ps(a.v, b.v)}; }
  friend Vec operator*(Vec a, Vec b) { return {_mm_mul_ps(a.v, b.v)}; }
  friend Vec operator/(Vec a, Vec b) { return {_mm_div_ps(a.v, b.v)}; }

  static Vec Min(Vec a, Vec b) { return {_mm_min_ps(a.v, b.v)}; }
  static Vec Max(Vec a, Vec b) { return {_mm_max_ps(a.v, b.v)}; }
  /// No hardware FMA on this tier: explicit mul then add (two roundings),
  /// bit-identical to the scalar `a*b + c` the references use.
  static Vec Fma(Vec a, Vec b, Vec c) {
    return {_mm_add_ps(_mm_mul_ps(a.v, b.v), c.v)};
  }
  static Vec Sqrt(Vec a) { return {_mm_sqrt_ps(a.v)}; }
  static Vec Abs(Vec a) {
    return {_mm_andnot_ps(_mm_set1_ps(-0.0f), a.v)};
  }
  static Vec CopySign(Vec mag, Vec sgn) {
    const __m128 sign = _mm_set1_ps(-0.0f);
    return {_mm_or_ps(_mm_andnot_ps(sign, mag.v), _mm_and_ps(sign, sgn.v))};
  }
  static Vec CmpGt(Vec a, Vec b) { return {_mm_cmpgt_ps(a.v, b.v)}; }
  static Vec CmpLe(Vec a, Vec b) { return {_mm_cmple_ps(a.v, b.v)}; }
  static Vec Select(Vec mask, Vec a, Vec b) {
    return {_mm_or_ps(_mm_and_ps(mask.v, a.v),
                      _mm_andnot_ps(mask.v, b.v))};
  }
  /// cvtps_epi32 rounds to nearest-even under the default MXCSR mode.
  static Vec RoundNearest(Vec a) {
    return {_mm_cvtepi32_ps(_mm_cvtps_epi32(a.v))};
  }
  static Vec Pow2(Vec n) {
    const __m128i ni = _mm_cvtps_epi32(n.v);
    const __m128i e =
        _mm_slli_epi32(_mm_add_epi32(ni, _mm_set1_epi32(127)), 23);
    return {_mm_castsi128_ps(e)};
  }
};

inline const char* IsaName() { return "sse2"; }
constexpr bool kEnabled = true;
constexpr bool kHasFma = false;

#elif defined(STWA_SIMD_NEON)

struct Vec {
  float32x4_t v;
  static constexpr int64_t kWidth = 4;

  static Vec Load(const float* p) { return {vld1q_f32(p)}; }
  void Store(float* p) const { vst1q_f32(p, v); }
  static Vec Broadcast(float x) { return {vdupq_n_f32(x)}; }
  static Vec Zero() { return {vdupq_n_f32(0.0f)}; }

  friend Vec operator+(Vec a, Vec b) { return {vaddq_f32(a.v, b.v)}; }
  friend Vec operator-(Vec a, Vec b) { return {vsubq_f32(a.v, b.v)}; }
  friend Vec operator*(Vec a, Vec b) { return {vmulq_f32(a.v, b.v)}; }
  friend Vec operator/(Vec a, Vec b) { return {vdivq_f32(a.v, b.v)}; }

  static Vec Min(Vec a, Vec b) { return {vminq_f32(a.v, b.v)}; }
  static Vec Max(Vec a, Vec b) { return {vmaxq_f32(a.v, b.v)}; }
  static Vec Fma(Vec a, Vec b, Vec c) { return {vfmaq_f32(c.v, a.v, b.v)}; }
  static Vec Sqrt(Vec a) { return {vsqrtq_f32(a.v)}; }
  static Vec Abs(Vec a) { return {vabsq_f32(a.v)}; }
  static Vec CopySign(Vec mag, Vec sgn) {
    const uint32x4_t sign = vdupq_n_u32(0x80000000u);
    return {vreinterpretq_f32_u32(
        vorrq_u32(vbicq_u32(vreinterpretq_u32_f32(mag.v), sign),
                  vandq_u32(vreinterpretq_u32_f32(sgn.v), sign)))};
  }
  static Vec CmpGt(Vec a, Vec b) {
    return {vreinterpretq_f32_u32(vcgtq_f32(a.v, b.v))};
  }
  static Vec CmpLe(Vec a, Vec b) {
    return {vreinterpretq_f32_u32(vcleq_f32(a.v, b.v))};
  }
  static Vec Select(Vec mask, Vec a, Vec b) {
    return {vbslq_f32(vreinterpretq_u32_f32(mask.v), a.v, b.v)};
  }
  static Vec RoundNearest(Vec a) { return {vrndnq_f32(a.v)}; }
  static Vec Pow2(Vec n) {
    const int32x4_t ni = vcvtnq_s32_f32(n.v);
    const int32x4_t e = vshlq_n_s32(vaddq_s32(ni, vdupq_n_s32(127)), 23);
    return {vreinterpretq_f32_s32(e)};
  }
};

inline const char* IsaName() { return "neon"; }
constexpr bool kEnabled = true;
constexpr bool kHasFma = true;

#else  // scalar tier

struct Vec {
  float v;
  static constexpr int64_t kWidth = 1;

  static Vec Load(const float* p) { return {*p}; }
  void Store(float* p) const { *p = v; }
  static Vec Broadcast(float x) { return {x}; }
  static Vec Zero() { return {0.0f}; }

  friend Vec operator+(Vec a, Vec b) { return {a.v + b.v}; }
  friend Vec operator-(Vec a, Vec b) { return {a.v - b.v}; }
  friend Vec operator*(Vec a, Vec b) { return {a.v * b.v}; }
  friend Vec operator/(Vec a, Vec b) { return {a.v / b.v}; }

  static Vec Min(Vec a, Vec b) { return {a.v < b.v ? a.v : b.v}; }
  static Vec Max(Vec a, Vec b) { return {a.v > b.v ? a.v : b.v}; }
  static Vec Fma(Vec a, Vec b, Vec c) { return {a.v * b.v + c.v}; }
  static Vec Sqrt(Vec a) { return {std::sqrt(a.v)}; }
  static Vec Abs(Vec a) { return {std::fabs(a.v)}; }
  static Vec CopySign(Vec mag, Vec sgn) {
    return {std::copysign(mag.v, sgn.v)};
  }
  // Masks are all-ones / all-zeros bit patterns, as on the vector tiers.
  static Vec CmpGt(Vec a, Vec b) { return FromMask(a.v > b.v); }
  static Vec CmpLe(Vec a, Vec b) { return FromMask(a.v <= b.v); }
  static Vec Select(Vec mask, Vec a, Vec b) {
    uint32_t m;
    std::memcpy(&m, &mask.v, sizeof(m));
    return m ? a : b;
  }
  static Vec RoundNearest(Vec a) { return {std::nearbyintf(a.v)}; }
  static Vec Pow2(Vec n) {
    return {std::ldexp(1.0f, static_cast<int>(std::nearbyintf(n.v)))};
  }

 private:
  static Vec FromMask(bool cond) {
    const uint32_t m = cond ? 0xFFFFFFFFu : 0u;
    float f;
    std::memcpy(&f, &m, sizeof(f));
    return {f};
  }
};

inline const char* IsaName() { return "scalar"; }
constexpr bool kEnabled = false;
constexpr bool kHasFma = false;

#endif

// --- ISA-independent helpers (built on Load/Store only) ------------------

/// Loads the first `n` floats of `p` (n <= kWidth) into the low lanes; the
/// remaining lanes hold `pad`. Same vector instructions as a full Load on
/// a padded stack copy, so downstream lane-independent ops stay
/// bit-identical regardless of where a chunk boundary fell.
inline Vec LoadPartial(const float* p, int64_t n, float pad = 0.0f) {
  alignas(64) float tmp[Vec::kWidth];
  for (int64_t i = 0; i < Vec::kWidth; ++i) tmp[i] = pad;
  std::memcpy(tmp, p, static_cast<size_t>(n) * sizeof(float));
  return Vec::Load(tmp);
}

/// Stores the first `n` lanes of `v` (n <= kWidth) to `p`; pad lanes are
/// dropped.
inline void StorePartial(Vec v, float* p, int64_t n) {
  alignas(64) float tmp[Vec::kWidth];
  v.Store(tmp);
  std::memcpy(p, tmp, static_cast<size_t>(n) * sizeof(float));
}

/// Replaces lanes [n, kWidth) with `fill` — used to mask ragged-tail pad
/// lanes out of a reduction whose identity is `fill`.
inline Vec MaskFirstN(Vec v, int64_t n, float fill = 0.0f) {
  alignas(64) float tmp[Vec::kWidth];
  v.Store(tmp);
  for (int64_t i = n; i < Vec::kWidth; ++i) tmp[i] = fill;
  return Vec::Load(tmp);
}

/// Sum of all lanes in a fixed pairwise tree: width 8 combines as
/// ((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7)); width 4 as (l0+l1)+(l2+l3).
/// The order never depends on runtime state, so reductions built on it
/// are deterministic at any thread count.
inline float ReduceAdd(Vec v) {
  alignas(64) float t[Vec::kWidth];
  v.Store(t);
  if constexpr (Vec::kWidth == 8) {
    return ((t[0] + t[1]) + (t[2] + t[3])) + ((t[4] + t[5]) + (t[6] + t[7]));
  } else if constexpr (Vec::kWidth == 4) {
    return (t[0] + t[1]) + (t[2] + t[3]);
  } else {
    return t[0];
  }
}

/// Max over all lanes (same fixed tree; max is exact so the order only
/// matters for NaN propagation).
inline float ReduceMax(Vec v) {
  alignas(64) float t[Vec::kWidth];
  v.Store(t);
  float m = t[0];
  for (int64_t i = 1; i < Vec::kWidth; ++i) m = m > t[i] ? m : t[i];
  return m;
}

/// Reference multiply-accumulate matching the active tier's Vec::Fma
/// rounding: one rounding (std::fmaf) on FMA tiers, two (mul then add)
/// otherwise. Tests build bit-exact GEMM references with this.
inline float MulAddRef(float a, float b, float acc) {
  if constexpr (kHasFma) {
    return std::fmaf(a, b, acc);
  } else {
    return a * b + acc;
  }
}

// --- Functor introspection ----------------------------------------------
//
// The templated elementwise maps in tensor/ops.h vectorize automatically
// when their functor also accepts Vec operands; plain scalar lambdas (and
// the std::function escape hatches) keep the scalar loop.

template <typename Fn>
inline constexpr bool kIsVecUnary =
    requires(const Fn& f, Vec v) { { f(v) } -> std::same_as<Vec>; };

template <typename Fn>
inline constexpr bool kIsVecBinary =
    requires(const Fn& f, Vec v) { { f(v, v) } -> std::same_as<Vec>; };

}  // namespace simd
}  // namespace stwa

#endif  // STWA_SIMD_SIMD_H_
