#include "simd/gemm_lowp.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"
#include "runtime/parallel.h"
#include "tensor/buffer_pool.h"

// Kernel tier selection. Inside an AVX2 build, AVX-512 (F+BW for the
// widening loads, VNNI for dpbusd) upgrades both microkernels to 512-bit
// vectors — double the fp32 FMA throughput of the 256-bit fp32 path on
// hosts with two 512-bit FMA pipes, which is what makes the bf16 tier
// *faster* than fp32 despite widening in-kernel. Without AVX-512 the
// 256-bit fallbacks (widen+FMA for bf16, pmaddwd for int8) keep the same
// arithmetic; non-AVX2 builds use the scalar reference paths.
#if defined(STWA_SIMD_AVX2) && defined(__AVX512F__) && \
    defined(__AVX512BW__) && defined(__AVX512VNNI__)
#define STWA_LOWP_AVX512 1
#endif

namespace stwa {
namespace simd {
namespace {

constexpr int64_t kLowpMR = 6;
#if defined(STWA_LOWP_AVX512)
constexpr int64_t kLowpNR = 32;
// The bf16 kernel runs taller tiles than int8: its per-k overhead is the
// two widening shuffles, so amortising them over 12 rows (24 of the 32
// zmm registers as accumulators) buys ~10% over 6 rows.
constexpr int64_t kBf16MR = 12;
#elif defined(STWA_SIMD_AVX2)
constexpr int64_t kLowpNR = 16;
constexpr int64_t kBf16MR = kLowpMR;
#else
constexpr int64_t kLowpNR = 1;  // column-major panels for the scalar tier
constexpr int64_t kBf16MR = kLowpMR;
#endif

// Word offset of logical column `c` within one k-row of a bf16 panel.
// The AVX-512 kernel widens a panel row with vpunpck{l,h}wd against
// zeros — one shuffle per output vector instead of three — but those
// interleave within 128-bit sublanes. Storing the columns pre-permuted
// makes the widened vectors come out in natural column order, so the
// epilogue masks and the scalar reference agree on which column is
// which. Identity on every other tier.
inline int64_t Bf16PanelWord(int64_t c) {
#if defined(STWA_LOWP_AVX512)
  const int64_t h = c / 16;  // 0 → vpunpcklwd vector, 1 → vpunpckhwd
  const int64_t e = c % 16;
  return 8 * (e / 4) + 4 * h + e % 4;
#else
  return c;
#endif
}

// Matches the grain heuristic in simd/gemm.cc.
constexpr int64_t kMinChunkFlops = 16384;

inline float OpA(const float* a, int64_t i, int64_t kk, int64_t k,
                 int64_t m, bool trans_a) {
  return trans_a ? a[kk * m + i] : a[i * k + kk];
}

// Packs op(A) rows [i0, i0+rows) into dst[k][mr] (k-major, zero row
// padding) — the same tile shape the fp32 packed path uses, so the
// microkernel broadcasts from a contiguous sliver.
void PackATileF32(const float* a, float* dst, int64_t i0, int64_t rows,
                  int64_t mr, int64_t m, int64_t k, bool trans_a) {
  if (!trans_a) {
    for (int64_t r = 0; r < rows; ++r) {
      const float* src = a + (i0 + r) * k;
      for (int64_t kk = 0; kk < k; ++kk) dst[kk * mr + r] = src[kk];
    }
  } else {
    for (int64_t kk = 0; kk < k; ++kk) {
      const float* src = a + kk * m + i0;
      for (int64_t r = 0; r < rows; ++r) dst[kk * mr + r] = src[r];
    }
  }
  if (rows < mr) {
    for (int64_t kk = 0; kk < k; ++kk) {
      for (int64_t r = rows; r < mr; ++r) dst[kk * mr + r] = 0.0f;
    }
  }
}

// Per-row symmetric int8 quantisation of op(A) into a row-major scratch.
// Row absmax is an exact max reduction in ascending k order and the
// quantiser rounds to nearest-even, so the bytes are identical however the
// rows are chunked across threads — and identical to what GemmInt8Ref
// computes.
template <typename Q, int kOffset>
void QuantizeOpA(const float* a, int64_t m, int64_t k, bool trans_a,
                 Q* qa, int64_t stride, float* sa) {
  runtime::ParallelFor(
      0, m, std::max<int64_t>(1, kMinChunkFlops / std::max<int64_t>(1, k)),
      [&](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
          float absmax = 0.0f;
          for (int64_t kk = 0; kk < k; ++kk) {
            const float v = std::fabs(OpA(a, i, kk, k, m, trans_a));
            absmax = v > absmax ? v : absmax;
          }
          const float scale = Int8Scale(absmax, kInt8QMax);
          sa[i] = scale;
          Q* row = qa + i * stride;
          for (int64_t kk = 0; kk < k; ++kk) {
            const int8_t q =
                QuantizeInt8(OpA(a, i, kk, k, m, trans_a), scale, kInt8QMax);
            row[kk] = static_cast<Q>(q + kOffset);
          }
          for (int64_t kk = k; kk < stride; ++kk) {
            row[kk] = static_cast<Q>(kOffset);
          }
        }
      });
}

int64_t PanelFlopGrain(int64_t m, int64_t k) {
  return std::max<int64_t>(
      1, kMinChunkFlops / std::max<int64_t>(1, k * kLowpNR * m));
}

// --- Scalar implementations (reference on vector builds, production on
// --- scalar/SSE2/NEON builds) --------------------------------------------

void ScalarBf16(const float* a, const PackedWeights& w, float* c, int64_t m,
                bool trans_a) {
  const int64_t k = w.k;
  const int64_t n = w.n;
  const int64_t nr = w.nr;
  runtime::ParallelFor(
      0, m,
      std::max<int64_t>(1, kMinChunkFlops / std::max<int64_t>(1, k * n)),
      [&](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
          float* cr = c + i * n;
          for (int64_t j = 0; j < n; ++j) {
            const uint16_t* col =
                w.bf16.data() + (j / nr) * k * nr + Bf16PanelWord(j % nr);
            float acc = 0.0f;
            for (int64_t kk = 0; kk < k; ++kk) {
              acc = MulAddRef(OpA(a, i, kk, k, m, trans_a),
                              F32FromBf16(col[kk * nr]), acc);
            }
            cr[j] = acc;
          }
        }
      });
}

// The integer dot is exact, so this reproduces the vector kernels'
// integers bit-for-bit; the dequant applies the same two fixed-order
// roundings ((sa*sb) then *dot) the kernels use.
void ScalarInt8(const float* a, const PackedWeights& w, float* c, int64_t m,
                bool trans_a) {
  const int64_t k = w.k;
  const int64_t n = w.n;
  const int64_t nr = w.nr;
  const int64_t kq = (k + 3) / 4;
  const int64_t qa_floats = (m * k + 3) / 4;
  auto qbuf = pool::Acquire(qa_floats + m);
  int8_t* qa = reinterpret_cast<int8_t*>(qbuf->data());
  float* sa = qbuf->data() + qa_floats;
  QuantizeOpA<int8_t, 0>(a, m, k, trans_a, qa, k, sa);
  runtime::ParallelFor(
      0, m,
      std::max<int64_t>(1, kMinChunkFlops / std::max<int64_t>(1, k * n)),
      [&](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
          const int8_t* qr = qa + i * k;
          float* cr = c + i * n;
          for (int64_t j = 0; j < n; ++j) {
            const int8_t* col =
                w.q8.data() + ((j / nr) * kq * nr + (j % nr)) * 4;
            int32_t dot = 0;
            for (int64_t kk = 0; kk < k; ++kk) {
              dot += static_cast<int32_t>(qr[kk]) *
                     static_cast<int32_t>(col[(kk / 4) * nr * 4 + kk % 4]);
            }
            cr[j] = static_cast<float>(dot) * (sa[i] * w.scales[j]);
          }
        }
      });
}

// --- AVX-512 kernels -----------------------------------------------------

#if defined(STWA_LOWP_AVX512)

// 12 x 32 bf16 tile: same k-ascending fma(a, widen(b), acc) chain per C
// element as ScalarBf16's MulAddRef loop (kHasFma on this tier), so the
// two are bit-identical. Interleaving zeros below each panel word is
// exactly the <<16 widening, and the Bf16PanelWord pack permutation
// cancels the sublane interleave, so b0/b1 hold columns 0..15/16..31 in
// natural order.
void Bf16Tile512(const float* ap, const uint16_t* bp, float* c, int64_t ldc,
                 int64_t k, int64_t rows, int64_t cols) {
  const __m512i zero = _mm512_setzero_si512();
  __m512 acc[kBf16MR][2];
  for (int64_t r = 0; r < kBf16MR; ++r) {
    acc[r][0] = _mm512_setzero_ps();
    acc[r][1] = _mm512_setzero_ps();
  }
  for (int64_t kk = 0; kk < k; ++kk) {
    const __m512i raw = _mm512_loadu_si512(bp + kk * kLowpNR);
    const __m512 b0 = _mm512_castsi512_ps(_mm512_unpacklo_epi16(zero, raw));
    const __m512 b1 = _mm512_castsi512_ps(_mm512_unpackhi_epi16(zero, raw));
    const float* ar = ap + kk * kBf16MR;
    for (int64_t r = 0; r < kBf16MR; ++r) {
      const __m512 av = _mm512_set1_ps(ar[r]);
      acc[r][0] = _mm512_fmadd_ps(av, b0, acc[r][0]);
      acc[r][1] = _mm512_fmadd_ps(av, b1, acc[r][1]);
    }
  }
  const __mmask16 m0 =
      cols >= 16 ? 0xFFFF : static_cast<__mmask16>((1u << cols) - 1);
  const __mmask16 m1 =
      cols >= 32 ? 0xFFFF
                 : (cols > 16 ? static_cast<__mmask16>((1u << (cols - 16)) - 1)
                              : 0);
  for (int64_t r = 0; r < rows; ++r) {
    float* cr = c + r * ldc;
    _mm512_mask_storeu_ps(cr, m0, acc[r][0]);
    if (m1) _mm512_mask_storeu_ps(cr + 16, m1, acc[r][1]);
  }
}

// 6 x 32 int8 tile via dpbusd: activations carry a +128 unsigned offset,
// corrected exactly with 128 * colsum after the loop, so the integer dots
// equal ScalarInt8's signed dots bit-for-bit.
void Int8Tile512(const uint8_t* const* qa_rows, const int8_t* bp,
                 const float* sa, const float* sb, const int32_t* csum,
                 float* c, int64_t ldc, int64_t kq, int64_t rows,
                 int64_t cols) {
  __m512i acc[kLowpMR][2];
  for (int64_t r = 0; r < kLowpMR; ++r) {
    acc[r][0] = _mm512_setzero_si512();
    acc[r][1] = _mm512_setzero_si512();
  }
  for (int64_t q = 0; q < kq; ++q) {
    const __m512i b0 = _mm512_loadu_si512(bp + q * kLowpNR * 4);
    const __m512i b1 = _mm512_loadu_si512(bp + q * kLowpNR * 4 + 64);
    for (int64_t r = 0; r < kLowpMR; ++r) {
      uint32_t quad;
      std::memcpy(&quad, qa_rows[r] + q * 4, sizeof(quad));
      const __m512i av = _mm512_set1_epi32(static_cast<int32_t>(quad));
      acc[r][0] = _mm512_dpbusd_epi32(acc[r][0], av, b0);
      acc[r][1] = _mm512_dpbusd_epi32(acc[r][1], av, b1);
    }
  }
  const __mmask16 m0 =
      cols >= 16 ? 0xFFFF : static_cast<__mmask16>((1u << cols) - 1);
  const __mmask16 m1 =
      cols >= 32 ? 0xFFFF
                 : (cols > 16 ? static_cast<__mmask16>((1u << (cols - 16)) - 1)
                              : 0);
  const __m512i corr0 =
      _mm512_slli_epi32(_mm512_maskz_loadu_epi32(m0, csum), 7);
  const __m512i corr1 =
      _mm512_slli_epi32(_mm512_maskz_loadu_epi32(m1, csum + 16), 7);
  const __m512 sb0 = _mm512_maskz_loadu_ps(m0, sb);
  const __m512 sb1 = _mm512_maskz_loadu_ps(m1, sb + 16);
  for (int64_t r = 0; r < rows; ++r) {
    float* cr = c + r * ldc;
    const __m512 sav = _mm512_set1_ps(sa[r]);
    const __m512 f0 = _mm512_mul_ps(
        _mm512_cvtepi32_ps(_mm512_sub_epi32(acc[r][0], corr0)),
        _mm512_mul_ps(sav, sb0));
    _mm512_mask_storeu_ps(cr, m0, f0);
    if (m1) {
      const __m512 f1 = _mm512_mul_ps(
          _mm512_cvtepi32_ps(_mm512_sub_epi32(acc[r][1], corr1)),
          _mm512_mul_ps(sav, sb1));
      _mm512_mask_storeu_ps(cr + 16, m1, f1);
    }
  }
}

#elif defined(STWA_SIMD_AVX2)

// 6 x 16 bf16 tile, 256-bit: same chain shape as Bf16Tile512 (and
// ScalarBf16) at half the width.
void Bf16Tile256(const float* ap, const uint16_t* bp, float* c, int64_t ldc,
                 int64_t k, int64_t rows, int64_t cols) {
  __m256 acc[kLowpMR][2];
  for (int64_t r = 0; r < kLowpMR; ++r) {
    acc[r][0] = _mm256_setzero_ps();
    acc[r][1] = _mm256_setzero_ps();
  }
  for (int64_t kk = 0; kk < k; ++kk) {
    const __m256i raw =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp + kk * kLowpNR));
    const __m256 b0 = _mm256_castsi256_ps(_mm256_slli_epi32(
        _mm256_cvtepu16_epi32(_mm256_castsi256_si128(raw)), 16));
    const __m256 b1 = _mm256_castsi256_ps(_mm256_slli_epi32(
        _mm256_cvtepu16_epi32(_mm256_extracti128_si256(raw, 1)), 16));
    const float* ar = ap + kk * kLowpMR;
    for (int64_t r = 0; r < kLowpMR; ++r) {
      const __m256 av = _mm256_set1_ps(ar[r]);
      acc[r][0] = _mm256_fmadd_ps(av, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_ps(av, b1, acc[r][1]);
    }
  }
  for (int64_t r = 0; r < rows; ++r) {
    float* cr = c + r * ldc;
    if (cols >= kLowpNR) {
      _mm256_storeu_ps(cr, acc[r][0]);
      _mm256_storeu_ps(cr + 8, acc[r][1]);
    } else if (cols > 8) {
      _mm256_storeu_ps(cr, acc[r][0]);
      StorePartial(Vec{acc[r][1]}, cr + 8, cols - 8);
    } else {
      StorePartial(Vec{acc[r][0]}, cr, cols);
    }
  }
}

// 6 x 16 int8 tile via pmaddwd on i16-widened operands: exact i32
// accumulation, no unsigned offset needed, identical integers to
// ScalarInt8 / the VNNI kernel.
void Int8Tile256(const int16_t* const* qa_rows, const int16_t* bp,
                 const float* sa, const float* sb, float* c, int64_t ldc,
                 int64_t kp, int64_t rows, int64_t cols) {
  __m256i acc[kLowpMR][2];
  for (int64_t r = 0; r < kLowpMR; ++r) {
    acc[r][0] = _mm256_setzero_si256();
    acc[r][1] = _mm256_setzero_si256();
  }
  for (int64_t q = 0; q < kp; ++q) {
    const __m256i b0 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(bp + q * kLowpNR * 2));
    const __m256i b1 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(bp + q * kLowpNR * 2 + 16));
    for (int64_t r = 0; r < kLowpMR; ++r) {
      uint32_t pair;
      std::memcpy(&pair, qa_rows[r] + q * 2, sizeof(pair));
      const __m256i av = _mm256_set1_epi32(static_cast<int32_t>(pair));
      acc[r][0] = _mm256_add_epi32(acc[r][0], _mm256_madd_epi16(av, b0));
      acc[r][1] = _mm256_add_epi32(acc[r][1], _mm256_madd_epi16(av, b1));
    }
  }
  const int64_t c0 = std::min<int64_t>(cols, 8);
  const int64_t c1 = std::max<int64_t>(cols - 8, 0);
  const Vec sb0 = LoadPartial(sb, c0);
  const Vec sb1 = c1 > 0 ? LoadPartial(sb + 8, c1) : Vec::Zero();
  for (int64_t r = 0; r < rows; ++r) {
    float* cr = c + r * ldc;
    const Vec sav = Vec::Broadcast(sa[r]);
    const Vec f0 = Vec{_mm256_cvtepi32_ps(acc[r][0])} * (sav * sb0);
    StorePartial(f0, cr, c0);
    if (c1 > 0) {
      const Vec f1 = Vec{_mm256_cvtepi32_ps(acc[r][1])} * (sav * sb1);
      StorePartial(f1, cr + 8, c1);
    }
  }
}

#endif

#if defined(STWA_LOWP_AVX512) || defined(STWA_SIMD_AVX2)

void VectorBf16(const float* a, const PackedWeights& w, float* c, int64_t m,
                bool trans_a) {
  const int64_t k = w.k;
  const int64_t n = w.n;
  const int64_t num_it = (m + kBf16MR - 1) / kBf16MR;
  auto ascratch = pool::Acquire(num_it * k * kBf16MR);
  float* pa = ascratch->data();
  runtime::ParallelFor(
      0, num_it,
      std::max<int64_t>(1, kMinChunkFlops / std::max<int64_t>(1, k * kBf16MR)),
      [&](int64_t t0, int64_t t1) {
        for (int64_t t = t0; t < t1; ++t) {
          const int64_t i0 = t * kBf16MR;
          PackATileF32(a, pa + t * k * kBf16MR, i0,
                       std::min(kBf16MR, m - i0), kBf16MR, m, k, trans_a);
        }
      });
  runtime::ParallelFor(
      0, w.num_panels(), PanelFlopGrain(m, k), [&](int64_t p0, int64_t p1) {
        for (int64_t jp = p0; jp < p1; ++jp) {
          const int64_t j0 = jp * kLowpNR;
          const int64_t cols = std::min(kLowpNR, n - j0);
          const uint16_t* bp = w.bf16.data() + jp * k * kLowpNR;
          for (int64_t t = 0; t < num_it; ++t) {
            const int64_t i0 = t * kBf16MR;
#if defined(STWA_LOWP_AVX512)
            Bf16Tile512(pa + t * k * kBf16MR, bp, c + i0 * n + j0, n, k,
                        std::min(kBf16MR, m - i0), cols);
#else
            Bf16Tile256(pa + t * k * kBf16MR, bp, c + i0 * n + j0, n, k,
                        std::min(kBf16MR, m - i0), cols);
#endif
          }
        }
      });
}

void VectorInt8(const float* a, const PackedWeights& w, float* c, int64_t m,
                bool trans_a) {
  const int64_t k = w.k;
  const int64_t n = w.n;
#if defined(STWA_LOWP_AVX512)
  // Row-major u8 activations with the +128 offset, k padded to quads.
  using AQ = uint8_t;
  constexpr int kAOffset = 128;
  const int64_t stride = (k + 3) / 4 * 4;
#else
  // Row-major i16 activations (pmaddwd operand), k padded to pairs.
  using AQ = int16_t;
  constexpr int kAOffset = 0;
  const int64_t stride = (k + 1) / 2 * 2;
#endif
  const int64_t qa_floats =
      (m * stride * static_cast<int64_t>(sizeof(AQ)) + 3) / 4;
  auto qbuf = pool::Acquire(qa_floats + m);
  AQ* qa = reinterpret_cast<AQ*>(qbuf->data());
  float* sa = qbuf->data() + qa_floats;
  QuantizeOpA<AQ, kAOffset>(a, m, k, trans_a, qa, stride, sa);
  const int64_t num_it = (m + kLowpMR - 1) / kLowpMR;
  runtime::ParallelFor(
      0, w.num_panels(), PanelFlopGrain(m, k), [&](int64_t p0, int64_t p1) {
        for (int64_t jp = p0; jp < p1; ++jp) {
          const int64_t j0 = jp * kLowpNR;
          const int64_t cols = std::min(kLowpNR, n - j0);
          for (int64_t t = 0; t < num_it; ++t) {
            const int64_t i0 = t * kLowpMR;
            const int64_t rows = std::min(kLowpMR, m - i0);
            const AQ* qa_rows[kLowpMR];
            float sat[kLowpMR];
            for (int64_t r = 0; r < kLowpMR; ++r) {
              // Pad rows point at the last valid row: read but never
              // stored.
              const int64_t i = std::min(i0 + r, m - 1);
              qa_rows[r] = qa + i * stride;
              sat[r] = sa[i];
            }
#if defined(STWA_LOWP_AVX512)
            Int8Tile512(qa_rows,
                        w.q8.data() + jp * ((k + 3) / 4) * kLowpNR * 4, sat,
                        w.scales.data() + j0, w.colsum.data() + j0,
                        c + i0 * n + j0, n, (k + 3) / 4, rows, cols);
#else
            Int8Tile256(qa_rows,
                        w.q16.data() + jp * ((k + 1) / 2) * kLowpNR * 2, sat,
                        w.scales.data() + j0, c + i0 * n + j0, n,
                        (k + 1) / 2, rows, cols);
#endif
          }
        }
      });
}

#endif  // vector builds

}  // namespace

int64_t PackedWeights::PanelBytes() const {
  return static_cast<int64_t>(bf16.size()) * 2 +
         static_cast<int64_t>(q8.size()) +
         static_cast<int64_t>(q16.size()) * 2 +
         static_cast<int64_t>(scales.size() + colsum.size()) * 4;
}

std::vector<float> ChannelAbsMax(const float* b, int64_t k, int64_t n,
                                 bool trans) {
  std::vector<float> out(static_cast<size_t>(n), 0.0f);
  if (!trans) {
    for (int64_t kk = 0; kk < k; ++kk) {
      const float* row = b + kk * n;
      for (int64_t j = 0; j < n; ++j) {
        const float v = std::fabs(row[j]);
        if (v > out[static_cast<size_t>(j)]) out[static_cast<size_t>(j)] = v;
      }
    }
  } else {
    for (int64_t j = 0; j < n; ++j) {
      const float* row = b + j * k;
      float mx = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) {
        const float v = std::fabs(row[kk]);
        if (v > mx) mx = v;
      }
      out[static_cast<size_t>(j)] = mx;
    }
  }
  return out;
}

std::vector<float> Int8ChannelScales(const float* b, int64_t k, int64_t n,
                                     bool trans) {
  std::vector<float> scales = ChannelAbsMax(b, k, n, trans);
  for (float& s : scales) s = Int8Scale(s, kInt8QMax);
  return scales;
}

std::shared_ptr<PackedWeights> PackWeights(const float* b, int64_t k,
                                           int64_t n, bool trans,
                                           Precision tier,
                                           const std::vector<float>* scales,
                                           bool bf16_trunc) {
  STWA_CHECK(tier != Precision::kFp32,
             "PackWeights: fp32 weights are not packed — the fp32 GEMM "
             "path reads them in place");
  STWA_CHECK(k >= 0 && n >= 0, "PackWeights: bad dims k=", k, " n=", n);
  auto w = std::make_shared<PackedWeights>();
  w->tier = tier;
  w->k = k;
  w->n = n;
  w->trans = trans;
  w->nr = kLowpNR;
  const int64_t np = w->num_panels();
  auto src = [&](int64_t kk, int64_t j) {
    return trans ? b[j * k + kk] : b[kk * n + j];
  };
  if (tier == Precision::kBf16) {
    w->bf16.assign(static_cast<size_t>(np * k * kLowpNR), 0);
    for (int64_t j = 0; j < n; ++j) {
      uint16_t* col = w->bf16.data() + (j / kLowpNR) * k * kLowpNR +
                      Bf16PanelWord(j % kLowpNR);
      for (int64_t kk = 0; kk < k; ++kk) {
        const float v = src(kk, j);
        col[kk * kLowpNR] = bf16_trunc ? Bf16FromF32Trunc(v) : Bf16FromF32(v);
      }
    }
    return w;
  }
  // int8: the i32 accumulators are exact only while k * max|ua*qb| fits;
  // 2^16 * 255 * 127 just clears INT32_MAX.
  STWA_CHECK(k <= (int64_t{1} << 16),
             "PackWeights: int8 GEMM supports k <= 65536, got ", k);
  if (scales != nullptr) {
    STWA_CHECK(static_cast<int64_t>(scales->size()) == n,
               "PackWeights: got ", scales->size(),
               " baked int8 scales for ", n, " output channels");
    w->scales = *scales;
  } else {
    w->scales = Int8ChannelScales(b, k, n, trans);
  }
  w->colsum.assign(static_cast<size_t>(n), 0);
  const int64_t kq = (k + 3) / 4;
  w->q8.assign(static_cast<size_t>(np * kq * kLowpNR * 4), 0);
  for (int64_t j = 0; j < n; ++j) {
    int8_t* col =
        w->q8.data() + ((j / kLowpNR) * kq * kLowpNR + j % kLowpNR) * 4;
    const float sb = w->scales[static_cast<size_t>(j)];
    int32_t sum = 0;
    for (int64_t kk = 0; kk < k; ++kk) {
      const int8_t q = QuantizeInt8(src(kk, j), sb, kInt8QMax);
      sum += q;
      col[(kk / 4) * kLowpNR * 4 + kk % 4] = q;
    }
    w->colsum[static_cast<size_t>(j)] = sum;
  }
#if defined(STWA_SIMD_AVX2) && !defined(STWA_LOWP_AVX512)
  // pmaddwd operand copy, widened to i16 in pair layout.
  const int64_t kp = (k + 1) / 2;
  w->q16.assign(static_cast<size_t>(np * kp * kLowpNR * 2), 0);
  for (int64_t j = 0; j < n; ++j) {
    const int8_t* col =
        w->q8.data() + ((j / kLowpNR) * kq * kLowpNR + j % kLowpNR) * 4;
    int16_t* dst =
        w->q16.data() + ((j / kLowpNR) * kp * kLowpNR + j % kLowpNR) * 2;
    for (int64_t kk = 0; kk < k; ++kk) {
      dst[(kk / 2) * kLowpNR * 2 + kk % 2] =
          col[(kk / 4) * kLowpNR * 4 + kk % 4];
    }
  }
#endif
  return w;
}

void GemmBf16Ref(const float* a, const PackedWeights& w, float* c, int64_t m,
                 bool trans_a) {
  ScalarBf16(a, w, c, m, trans_a);
}

void GemmInt8Ref(const float* a, const PackedWeights& w, float* c, int64_t m,
                 bool trans_a) {
  ScalarInt8(a, w, c, m, trans_a);
}

void GemmLowp(const float* a, const PackedWeights& w, float* c, int64_t m,
              bool trans_a) {
  STWA_CHECK(w.nr == kLowpNR,
             "GemmLowp: packed panels from a different build tier (nr=",
             w.nr, ", kernel expects ", kLowpNR, ")");
  if (m == 0 || w.n == 0) return;
  if (w.k == 0) {
    std::fill(c, c + m * w.n, 0.0f);
    return;
  }
#if defined(STWA_LOWP_AVX512) || defined(STWA_SIMD_AVX2)
  if (w.tier == Precision::kBf16) {
    VectorBf16(a, w, c, m, trans_a);
  } else {
    VectorInt8(a, w, c, m, trans_a);
  }
#else
  if (w.tier == Precision::kBf16) {
    ScalarBf16(a, w, c, m, trans_a);
  } else {
    ScalarInt8(a, w, c, m, trans_a);
  }
#endif
}

const char* LowpKernelName() {
#if defined(STWA_LOWP_AVX512)
  return "avx512-vnni";
#elif defined(STWA_SIMD_AVX2)
  return "avx2";
#else
  return "scalar";
#endif
}

}  // namespace simd
}  // namespace stwa
