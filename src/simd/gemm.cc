#include "simd/gemm.h"

#include <algorithm>

#include "common/check.h"
#include "runtime/parallel.h"
#include "tensor/buffer_pool.h"

namespace stwa {
namespace simd {
namespace {

constexpr int64_t kW = Vec::kWidth;
// Matches ops::detail::kMinChunkWork (kept local: simd must not depend on
// tensor/ops.h, which includes this layer).
constexpr int64_t kMinChunkFlops = 16384;
// Packed path pays one B repack + A tile packs per K block; below this
// flop count the row kernels win.
constexpr int64_t kPackedMinFlops = 128 * 1024;

int64_t RowGrain(int64_t k, int64_t n) {
  const int64_t flops_per_row = std::max<int64_t>(1, k * n);
  return std::max<int64_t>(1, kMinChunkFlops / flops_per_row);
}

// --- Packing -------------------------------------------------------------

// Packs rows [kb, kb+kc) of op(B) columns [j0, j0+kNR) into dst[kc][kNR],
// zero-padding columns past n. Pad columns are harmless: their lanes are
// never stored (lane independence), and zero is the FMA identity.
void PackBPanel(const float* b, float* dst, int64_t kb, int64_t kc,
                int64_t j0, int64_t n, int64_t k, bool trans_b) {
  const int64_t cols = std::min(kGemmNR, n - j0);
  if (!trans_b) {
    const float* src = b + kb * n + j0;
    float* d = dst;
    for (int64_t kk = 0; kk < kc; ++kk, src += n, d += kGemmNR) {
      int64_t j = 0;
      for (; j < cols; ++j) d[j] = src[j];
      for (; j < kGemmNR; ++j) d[j] = 0.0f;
    }
  } else {
    // b is [n, k]: op(B)[kb+kk][j0+j] = b[(j0+j)*k + kb+kk]. Iterate j
    // outer so each source row is read contiguously.
    for (int64_t j = 0; j < cols; ++j) {
      const float* src = b + (j0 + j) * k + kb;
      for (int64_t kk = 0; kk < kc; ++kk) dst[kk * kGemmNR + j] = src[kk];
    }
    for (int64_t j = cols; j < kGemmNR; ++j) {
      for (int64_t kk = 0; kk < kc; ++kk) dst[kk * kGemmNR + j] = 0.0f;
    }
  }
}

// Packs op(A) rows [i0, i0+rows) x k-range [kb, kb+kc) into dst[kc][kMR]
// (k-major so the microkernel broadcasts from a contiguous sliver),
// zero-padding rows past m. Pad rows accumulate zeros and are never
// stored.
void PackATile(const float* a, float* dst, int64_t i0, int64_t rows,
               int64_t kb, int64_t kc, int64_t m, int64_t k, bool trans_a) {
  if (!trans_a) {
    for (int64_t r = 0; r < rows; ++r) {
      const float* src = a + (i0 + r) * k + kb;
      for (int64_t kk = 0; kk < kc; ++kk) dst[kk * kGemmMR + r] = src[kk];
    }
  } else {
    // a is [k, m]: op(A)[i0+r][kb+kk] = a[(kb+kk)*m + i0+r].
    for (int64_t kk = 0; kk < kc; ++kk) {
      const float* src = a + (kb + kk) * m + i0;
      for (int64_t r = 0; r < rows; ++r) dst[kk * kGemmMR + r] = src[r];
    }
  }
  if (rows < kGemmMR) {
    for (int64_t kk = 0; kk < kc; ++kk) {
      for (int64_t r = rows; r < kGemmMR; ++r) dst[kk * kGemmMR + r] = 0.0f;
    }
  }
}

// --- Microkernel ---------------------------------------------------------

// kMR x kNR register tile: C[0:rows, 0:cols] (+)= Apack @ Bpanel over kc
// k steps. `first` zeroes the accumulators; later K blocks reload the
// partial C values, which resumes each element's k-ascending FMA chain
// exactly (a load/store round trip does not round).
void MicroKernel(const float* ap, const float* bp, float* c, int64_t ldc,
                 int64_t kc, bool first, int64_t rows, int64_t cols) {
  Vec acc[kGemmMR][2];
  for (int64_t r = 0; r < kGemmMR; ++r) {
    if (first || r >= rows) {
      acc[r][0] = Vec::Zero();
      acc[r][1] = Vec::Zero();
    } else {
      const float* cr = c + r * ldc;
      if (cols >= kGemmNR) {
        acc[r][0] = Vec::Load(cr);
        acc[r][1] = Vec::Load(cr + kW);
      } else if (cols > kW) {
        acc[r][0] = Vec::Load(cr);
        acc[r][1] = LoadPartial(cr + kW, cols - kW);
      } else {
        acc[r][0] = LoadPartial(cr, cols);
        acc[r][1] = Vec::Zero();
      }
    }
  }
  for (int64_t kk = 0; kk < kc; ++kk) {
    const Vec b0 = Vec::Load(bp + kk * kGemmNR);
    const Vec b1 = Vec::Load(bp + kk * kGemmNR + kW);
    const float* ar = ap + kk * kGemmMR;
    for (int64_t r = 0; r < kGemmMR; ++r) {
      const Vec av = Vec::Broadcast(ar[r]);
      acc[r][0] = Vec::Fma(av, b0, acc[r][0]);
      acc[r][1] = Vec::Fma(av, b1, acc[r][1]);
    }
  }
  for (int64_t r = 0; r < rows; ++r) {
    float* cr = c + r * ldc;
    if (cols >= kGemmNR) {
      acc[r][0].Store(cr);
      acc[r][1].Store(cr + kW);
    } else if (cols > kW) {
      acc[r][0].Store(cr);
      StorePartial(acc[r][1], cr + kW, cols - kW);
    } else {
      StorePartial(acc[r][0], cr, cols);
    }
  }
}

void GemmPacked(const float* a, const float* b, float* c, int64_t m,
                int64_t n, int64_t k, bool trans_a, bool trans_b) {
  const int64_t num_jp = (n + kGemmNR - 1) / kGemmNR;
  const int64_t num_it = (m + kGemmMR - 1) / kGemmMR;
  const int64_t kc_max = std::min(k, kGemmKC);
  // One panel set per K block, recycled through the buffer pool.
  auto bscratch = pool::Acquire(kc_max * num_jp * kGemmNR);
  auto ascratch = pool::Acquire(kc_max * num_it * kGemmMR);
  float* pb = bscratch->data();
  float* pa = ascratch->data();
  for (int64_t kb = 0; kb < k; kb += kGemmKC) {
    const int64_t kc = std::min(kGemmKC, k - kb);
    runtime::ParallelFor(
        0, num_jp, std::max<int64_t>(1, kMinChunkFlops / (kc * kGemmNR)),
        [&](int64_t jp0, int64_t jp1) {
          for (int64_t jp = jp0; jp < jp1; ++jp) {
            PackBPanel(b, pb + jp * kc * kGemmNR, kb, kc, jp * kGemmNR, n,
                       k, trans_b);
          }
        });
    runtime::ParallelFor(
        0, num_it, std::max<int64_t>(1, kMinChunkFlops / (kc * kGemmMR)),
        [&](int64_t t0, int64_t t1) {
          for (int64_t t = t0; t < t1; ++t) {
            const int64_t i0 = t * kGemmMR;
            PackATile(a, pa + t * kc * kGemmMR, i0,
                      std::min(kGemmMR, m - i0), kb, kc, m, k, trans_a);
          }
        });
    const bool first = kb == 0;
    // Panel-outer loop: one kc x kNR B panel stays cache-resident while
    // every packed A tile streams through it — far less B re-read traffic
    // than tile-outer. Work is fixed by index math (panel jp covers
    // columns [jp*NR, jp*NR+NR), tile t rows [t*MR, t*MR+MR)), never by
    // chunk phase, so results are chunking-independent.
    runtime::ParallelFor(
        0, num_jp,
        std::max<int64_t>(1, kMinChunkFlops /
                                 (kc * kGemmNR * std::max<int64_t>(1, m))),
        [&](int64_t jp0, int64_t jp1) {
          for (int64_t jp = jp0; jp < jp1; ++jp) {
            const float* bp = pb + jp * kc * kGemmNR;
            const int64_t j0 = jp * kGemmNR;
            const int64_t cols = std::min(kGemmNR, n - j0);
            for (int64_t t = 0; t < num_it; ++t) {
              const int64_t i0 = t * kGemmMR;
              MicroKernel(pa + t * kc * kGemmMR, bp, c + i0 * n + j0, n,
                          kc, first, std::min(kGemmMR, m - i0), cols);
            }
          }
        });
  }
}

}  // namespace

void GemmRowsNN(const float* a, const float* b, float* c, int64_t i0,
                int64_t i1, int64_t k, int64_t n) {
  for (int64_t i = i0; i < i1; ++i) {
    const float* ar = a + i * k;
    float* cr = c + i * n;
    int64_t j = 0;
    // 4-vector register block held across the whole k loop; each C
    // element is one k-ascending FMA chain.
    for (; j + 4 * kW <= n; j += 4 * kW) {
      Vec a0 = Vec::Zero();
      Vec a1 = Vec::Zero();
      Vec a2 = Vec::Zero();
      Vec a3 = Vec::Zero();
      const float* bp = b + j;
      for (int64_t kk = 0; kk < k; ++kk, bp += n) {
        const Vec av = Vec::Broadcast(ar[kk]);
        a0 = Vec::Fma(av, Vec::Load(bp), a0);
        a1 = Vec::Fma(av, Vec::Load(bp + kW), a1);
        a2 = Vec::Fma(av, Vec::Load(bp + 2 * kW), a2);
        a3 = Vec::Fma(av, Vec::Load(bp + 3 * kW), a3);
      }
      a0.Store(cr + j);
      a1.Store(cr + j + kW);
      a2.Store(cr + j + 2 * kW);
      a3.Store(cr + j + 3 * kW);
    }
    for (; j + kW <= n; j += kW) {
      Vec acc = Vec::Zero();
      const float* bp = b + j;
      for (int64_t kk = 0; kk < k; ++kk, bp += n) {
        acc = Vec::Fma(Vec::Broadcast(ar[kk]), Vec::Load(bp), acc);
      }
      acc.Store(cr + j);
    }
    if (j < n) {
      const int64_t rem = n - j;
      Vec acc = Vec::Zero();
      const float* bp = b + j;
      for (int64_t kk = 0; kk < k; ++kk, bp += n) {
        acc = Vec::Fma(Vec::Broadcast(ar[kk]), LoadPartial(bp, rem), acc);
      }
      StorePartial(acc, cr + j, rem);
    }
  }
}

void GemmRowsNT(const float* a, const float* b, float* c, int64_t i0,
                int64_t i1, int64_t k, int64_t n) {
  for (int64_t i = i0; i < i1; ++i) {
    const float* ar = a + i * k;
    float* cr = c + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* br = b + j * k;
      // Fixed 4-vector lane accumulators combined in a fixed tree: the
      // lane a product lands in depends only on its k index.
      Vec a0 = Vec::Zero();
      Vec a1 = Vec::Zero();
      Vec a2 = Vec::Zero();
      Vec a3 = Vec::Zero();
      int64_t kk = 0;
      for (; kk + 4 * kW <= k; kk += 4 * kW) {
        a0 = Vec::Fma(Vec::Load(ar + kk), Vec::Load(br + kk), a0);
        a1 = Vec::Fma(Vec::Load(ar + kk + kW), Vec::Load(br + kk + kW), a1);
        a2 = Vec::Fma(Vec::Load(ar + kk + 2 * kW),
                      Vec::Load(br + kk + 2 * kW), a2);
        a3 = Vec::Fma(Vec::Load(ar + kk + 3 * kW),
                      Vec::Load(br + kk + 3 * kW), a3);
      }
      for (; kk + kW <= k; kk += kW) {
        a0 = Vec::Fma(Vec::Load(ar + kk), Vec::Load(br + kk), a0);
      }
      if (kk < k) {
        const int64_t rem = k - kk;
        // Zero pad lanes: fma(0, 0, acc) == acc exactly, so the tail
        // needs no mask.
        a0 = Vec::Fma(LoadPartial(ar + kk, rem), LoadPartial(br + kk, rem),
                      a0);
      }
      cr[j] = ReduceAdd(((a0 + a1) + (a2 + a3)));
    }
  }
}

void GemmRowsTN(const float* a, const float* b, float* c, int64_t i0,
                int64_t i1, int64_t k, int64_t m, int64_t n) {
  for (int64_t i = i0; i < i1; ++i) {
    float* cr = c + i * n;
    int64_t j = 0;
    for (; j + 4 * kW <= n; j += 4 * kW) {
      Vec a0 = Vec::Zero();
      Vec a1 = Vec::Zero();
      Vec a2 = Vec::Zero();
      Vec a3 = Vec::Zero();
      const float* bp = b + j;
      for (int64_t kk = 0; kk < k; ++kk, bp += n) {
        const Vec av = Vec::Broadcast(a[kk * m + i]);
        a0 = Vec::Fma(av, Vec::Load(bp), a0);
        a1 = Vec::Fma(av, Vec::Load(bp + kW), a1);
        a2 = Vec::Fma(av, Vec::Load(bp + 2 * kW), a2);
        a3 = Vec::Fma(av, Vec::Load(bp + 3 * kW), a3);
      }
      a0.Store(cr + j);
      a1.Store(cr + j + kW);
      a2.Store(cr + j + 2 * kW);
      a3.Store(cr + j + 3 * kW);
    }
    for (; j + kW <= n; j += kW) {
      Vec acc = Vec::Zero();
      const float* bp = b + j;
      for (int64_t kk = 0; kk < k; ++kk, bp += n) {
        acc = Vec::Fma(Vec::Broadcast(a[kk * m + i]), Vec::Load(bp), acc);
      }
      acc.Store(cr + j);
    }
    if (j < n) {
      const int64_t rem = n - j;
      Vec acc = Vec::Zero();
      const float* bp = b + j;
      for (int64_t kk = 0; kk < k; ++kk, bp += n) {
        acc = Vec::Fma(Vec::Broadcast(a[kk * m + i]), LoadPartial(bp, rem),
                       acc);
      }
      StorePartial(acc, cr + j, rem);
    }
  }
}

bool GemmUsesPackedPath(int64_t m, int64_t n, int64_t k) {
  return kEnabled && m >= kGemmMR && n >= kGemmNR &&
         m * n * k >= kPackedMinFlops;
}

void Gemm2D(const float* a, const float* b, float* c, int64_t m, int64_t n,
            int64_t k, bool trans_a, bool trans_b) {
  STWA_CHECK(!(trans_a && trans_b), "Gemm2D: TT is unsupported");
  if (m == 0 || n == 0) return;
  if (k == 0) {
    std::fill(c, c + m * n, 0.0f);
    return;
  }
  if (GemmUsesPackedPath(m, n, k)) {
    GemmPacked(a, b, c, m, n, k, trans_a, trans_b);
    return;
  }
  runtime::ParallelFor(0, m, RowGrain(k, n),
                       [=](int64_t i0, int64_t i1) {
                         if (trans_a) {
                           GemmRowsTN(a, b, c, i0, i1, k, m, n);
                         } else if (trans_b) {
                           GemmRowsNT(a, b, c, i0, i1, k, n);
                         } else {
                           GemmRowsNN(a, b, c, i0, i1, k, n);
                         }
                       });
}

}  // namespace simd
}  // namespace stwa
