#include "simd/lowp.h"

#include <cstdlib>

#include "common/check.h"

namespace stwa {
namespace simd {

const char* PrecisionName(Precision p) {
  switch (p) {
    case Precision::kFp32:
      return "fp32";
    case Precision::kBf16:
      return "bf16";
    case Precision::kInt8:
      return "int8";
  }
  STWA_FAIL("unknown Precision value ", static_cast<int>(p));
}

Precision ParsePrecision(const std::string& name) {
  if (name == "fp32") return Precision::kFp32;
  if (name == "bf16") return Precision::kBf16;
  if (name == "int8") return Precision::kInt8;
  throw Error("unknown precision \"" + name +
              "\"; expected fp32, bf16 or int8");
}

Precision EnvPrecision() {
  const char* env = std::getenv("STWA_PRECISION");
  if (env == nullptr || env[0] == '\0') return Precision::kFp32;
  return ParsePrecision(env);
}

int64_t WeightBytes(Precision p) {
  switch (p) {
    case Precision::kFp32:
      return 4;
    case Precision::kBf16:
      return 2;
    case Precision::kInt8:
      return 1;
  }
  STWA_FAIL("unknown Precision value ", static_cast<int>(p));
}

}  // namespace simd
}  // namespace stwa
