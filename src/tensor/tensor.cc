#include "tensor/tensor.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/check.h"
#include "common/rng.h"
#include "tensor/buffer_pool.h"

namespace stwa {

int64_t NumElements(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    STWA_CHECK(d >= 0, "negative dimension in shape ", ShapeToString(shape));
    n *= d;
  }
  return n;
}

std::string ShapeToString(const Shape& shape) {
  std::ostringstream oss;
  oss << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) oss << ", ";
    oss << shape[i];
  }
  oss << "]";
  return oss.str();
}

Tensor::Tensor() : size_(0) {}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)) {
  size_ = NumElements(shape_);
  data_ = pool::Acquire(size_);
  Fill(0.0f);
}

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)) {
  size_ = NumElements(shape_);
  data_ = pool::Acquire(size_);
  Fill(fill);
}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)) {
  size_ = NumElements(shape_);
  STWA_CHECK(static_cast<int64_t>(values.size()) == size_,
             "value count ", values.size(), " does not match shape ",
             ShapeToString(shape_));
  // Copy into pooled (64-byte aligned) storage rather than adopting the
  // caller's vector, so every Tensor buffer shares the alignment and
  // recycling guarantees.
  data_ = pool::Acquire(size_);
  if (size_ > 0) std::copy(values.begin(), values.end(), data_->begin());
}

Tensor Tensor::Uninit(Shape shape) {
  Tensor t;
  t.shape_ = std::move(shape);
  t.size_ = NumElements(t.shape_);
  t.data_ = pool::Acquire(t.size_);
  return t;
}

Tensor::Tensor(std::initializer_list<float> values)
    : Tensor(Shape{static_cast<int64_t>(values.size())},
             std::vector<float>(values)) {}

Tensor Tensor::Zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::Ones(Shape shape) { return Tensor(std::move(shape), 1.0f); }

Tensor Tensor::Full(Shape shape, float value) {
  return Tensor(std::move(shape), value);
}

Tensor Tensor::Randn(Shape shape, Rng& rng) {
  Tensor t = Uninit(std::move(shape));
  float* p = t.data();
  for (int64_t i = 0; i < t.size(); ++i) p[i] = rng.Normal();
  return t;
}

Tensor Tensor::Rand(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t = Uninit(std::move(shape));
  float* p = t.data();
  for (int64_t i = 0; i < t.size(); ++i) p[i] = rng.Uniform(lo, hi);
  return t;
}

Tensor Tensor::Arange(int64_t count, float start, float step) {
  STWA_CHECK(count >= 0, "Arange count must be non-negative");
  Tensor t = Uninit(Shape{count});
  float* p = t.data();
  for (int64_t i = 0; i < count; ++i) p[i] = start + step * i;
  return t;
}

Tensor Tensor::Eye(int64_t n) {
  Tensor t(Shape{n, n});
  for (int64_t i = 0; i < n; ++i) t.data()[i * n + i] = 1.0f;
  return t;
}

int64_t Tensor::dim(int64_t d) const {
  int64_t r = rank();
  if (d < 0) d += r;
  STWA_CHECK(d >= 0 && d < r, "dim ", d, " out of range for rank ", r);
  return shape_[d];
}

float& Tensor::at(int64_t flat_index) {
  STWA_CHECK(flat_index >= 0 && flat_index < size_, "flat index ",
             flat_index, " out of range [0, ", size_, ")");
  return data()[flat_index];
}

float Tensor::at(int64_t flat_index) const {
  STWA_CHECK(flat_index >= 0 && flat_index < size_, "flat index ",
             flat_index, " out of range [0, ", size_, ")");
  return data()[flat_index];
}

int64_t Tensor::FlatIndex(std::initializer_list<int64_t> index) const {
  STWA_CHECK(static_cast<int64_t>(index.size()) == rank(),
             "index rank ", index.size(), " != tensor rank ", rank());
  int64_t flat = 0;
  int64_t d = 0;
  for (int64_t i : index) {
    STWA_CHECK(i >= 0 && i < shape_[d], "index ", i,
               " out of range for dim ", d, " of shape ",
               ShapeToString(shape_));
    flat = flat * shape_[d] + i;
    ++d;
  }
  return flat;
}

float& Tensor::operator()(std::initializer_list<int64_t> index) {
  return data()[FlatIndex(index)];
}

float Tensor::operator()(std::initializer_list<int64_t> index) const {
  return data()[FlatIndex(index)];
}

float Tensor::item() const {
  STWA_CHECK(size_ == 1, "item() requires a single-element tensor, shape ",
             ShapeToString(shape_));
  return data()[0];
}

Tensor Tensor::Reshape(Shape new_shape) const {
  STWA_CHECK(NumElements(new_shape) == size_, "cannot reshape ",
             ShapeToString(shape_), " to ", ShapeToString(new_shape));
  Tensor out = *this;
  out.shape_ = std::move(new_shape);
  return out;
}

Tensor Tensor::Clone() const {
  // Not via Uninit(shape_): a default-constructed tensor has a rank-0
  // shape with size 0, which NumElements would promote to a scalar.
  Tensor out;
  out.shape_ = shape_;
  out.size_ = size_;
  out.data_ = pool::Acquire(size_);
  if (size_ > 0) std::copy(data(), data() + size_, out.data());
  return out;
}

void Tensor::Fill(float value) {
  if (size_ > 0) std::fill(data(), data() + size_, value);
}

void Tensor::CopyDataFrom(const Tensor& src) {
  STWA_CHECK(src.size() == size_, "CopyDataFrom size mismatch: ",
             src.size(), " vs ", size_);
  std::copy(src.data(), src.data() + size_, data());
}

std::string Tensor::ToString() const {
  std::ostringstream oss;
  oss << "Tensor" << ShapeToString(shape_) << " ";
  constexpr int64_t kMaxPrint = 32;
  oss << "{";
  for (int64_t i = 0; i < std::min(size_, kMaxPrint); ++i) {
    if (i > 0) oss << ", ";
    oss << data()[i];
  }
  if (size_ > kMaxPrint) oss << ", ...";
  oss << "}";
  return oss.str();
}

std::ostream& operator<<(std::ostream& os, const Tensor& t) {
  return os << t.ToString();
}

bool SameShape(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape();
}

}  // namespace stwa
