#include "tensor/lowp_cache.h"

#include <atomic>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <utility>

namespace stwa {
namespace lowp {
namespace {

struct Entry {
  // One slot per orientation: nn serves op(B)=[k,n] buffers, nt serves
  // [n,k] buffers consumed through MatMulNT.
  std::shared_ptr<const simd::PackedWeights> nn;
  std::shared_ptr<const simd::PackedWeights> nt;
};

std::shared_mutex& Mutex() {
  static std::shared_mutex mu;
  return mu;
}

std::unordered_map<const float*, Entry>& Map() {
  static std::unordered_map<const float*, Entry> map;
  return map;
}

// Registered-buffer count, readable without the lock: the hot-path bail.
std::atomic<int64_t> g_active{0};

}  // namespace

void Register(const float* data,
              std::shared_ptr<const simd::PackedWeights> pack) {
  if (data == nullptr || pack == nullptr) return;
  std::unique_lock lock(Mutex());
  auto [it, inserted] = Map().try_emplace(data);
  if (inserted) g_active.fetch_add(1, std::memory_order_relaxed);
  (pack->trans ? it->second.nt : it->second.nn) = std::move(pack);
}

void Unregister(const float* data) {
  std::unique_lock lock(Mutex());
  if (Map().erase(data) > 0) {
    g_active.fetch_sub(1, std::memory_order_relaxed);
  }
}

std::shared_ptr<const simd::PackedWeights> Find(const float* data, int64_t k,
                                                int64_t n, bool trans) {
  if (g_active.load(std::memory_order_relaxed) == 0) return nullptr;
  std::shared_lock lock(Mutex());
  const auto it = Map().find(data);
  if (it == Map().end()) return nullptr;
  const auto& pack = trans ? it->second.nt : it->second.nn;
  if (pack == nullptr || pack->k != k || pack->n != n) return nullptr;
  return pack;
}

int64_t ActiveCount() {
  return g_active.load(std::memory_order_relaxed);
}

int64_t TotalPanelBytes() {
  std::shared_lock lock(Mutex());
  int64_t total = 0;
  for (const auto& [ptr, entry] : Map()) {
    if (entry.nn) total += entry.nn->PanelBytes();
    if (entry.nt) total += entry.nt->PanelBytes();
  }
  return total;
}

}  // namespace lowp
}  // namespace stwa
