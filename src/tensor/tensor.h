// Dense row-major float32 tensor.
//
// The Tensor is the storage substrate for the whole library: the autograd
// layer wraps it, the NN modules allocate parameters as Tensors, and the
// data pipeline materialises batches as Tensors. Design choices:
//   * contiguous row-major storage, float32 only (matches the paper's
//     training precision);
//   * shallow copy semantics via a shared buffer — copies are O(1); use
//     Clone() for a deep copy. Slicing/permuting materialise new buffers,
//     which keeps every kernel simple, cache-friendly and testable;
//   * buffers come from the recycling pool (tensor/buffer_pool.h); the
//     backing vector's size() may exceed the tensor's size(), so all code
//     must address through data()/size(), never the vector's bounds;
//   * all shape errors throw stwa::Error via STWA_CHECK.

#ifndef STWA_TENSOR_TENSOR_H_
#define STWA_TENSOR_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "tensor/buffer_pool.h"

namespace stwa {

class Rng;

/// Tensor shape: list of non-negative dimension extents.
using Shape = std::vector<int64_t>;

/// Returns the number of elements of a shape (product of extents; 1 for a
/// rank-0/scalar shape).
int64_t NumElements(const Shape& shape);

/// Human-readable form, e.g. "[3, 4, 5]".
std::string ShapeToString(const Shape& shape);

/// Dense row-major float tensor with shared-buffer copy semantics.
class Tensor {
 public:
  /// Empty tensor (rank 0, zero elements until assigned).
  Tensor();

  /// Allocates a zero-initialised tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Allocates a tensor of the given shape with every element set to
  /// `fill`.
  Tensor(Shape shape, float fill);

  /// Builds a tensor from explicit values; `values.size()` must equal the
  /// shape's element count.
  Tensor(Shape shape, std::vector<float> values);

  /// Convenience: 1-D tensor from an initializer list.
  Tensor(std::initializer_list<float> values);

  // --- Factories -------------------------------------------------------

  /// All-zeros tensor.
  static Tensor Zeros(Shape shape);

  /// All-ones tensor.
  static Tensor Ones(Shape shape);

  /// Constant-filled tensor.
  static Tensor Full(Shape shape, float value);

  /// I.i.d. standard normal entries drawn from `rng`.
  static Tensor Randn(Shape shape, Rng& rng);

  /// I.i.d. uniform entries in [lo, hi) drawn from `rng`.
  static Tensor Rand(Shape shape, Rng& rng, float lo = 0.0f, float hi = 1.0f);

  /// 1-D tensor [start, start+1*step, ...] with `count` entries.
  static Tensor Arange(int64_t count, float start = 0.0f, float step = 1.0f);

  /// Identity matrix of size n x n.
  static Tensor Eye(int64_t n);

  /// Allocates a tensor WITHOUT initialising its contents (a recycled pool
  /// buffer carries stale bytes). Only for kernels that provably write
  /// every element before any read — see DESIGN.md "Memory management".
  static Tensor Uninit(Shape shape);

  // --- Introspection ---------------------------------------------------

  /// Tensor shape.
  const Shape& shape() const { return shape_; }

  /// Extent of dimension `dim` (supports negative indices from the back).
  int64_t dim(int64_t d) const;

  /// Number of dimensions.
  int64_t rank() const { return static_cast<int64_t>(shape_.size()); }

  /// Total number of elements.
  int64_t size() const { return size_; }

  /// True if the tensor has zero elements or was default constructed.
  bool empty() const { return size_ == 0; }

  /// Mutable raw storage pointer (nullptr for an empty tensor).
  float* data() { return data_ ? data_->data() : nullptr; }

  /// Const raw storage pointer (nullptr for an empty tensor).
  const float* data() const { return data_ ? data_->data() : nullptr; }

  /// Number of Tensor handles sharing this buffer (0 for an unallocated
  /// default-constructed tensor). In-place kernels are only safe on
  /// tensors with use_count() == 1 or on explicitly owned grad buffers.
  int64_t use_count() const { return data_ ? data_.use_count() : 0; }

  // --- Element access --------------------------------------------------

  /// Flat (row-major) element access.
  float& at(int64_t flat_index);
  float at(int64_t flat_index) const;

  /// Multi-index access; the index list length must equal the rank.
  float& operator()(std::initializer_list<int64_t> index);
  float operator()(std::initializer_list<int64_t> index) const;

  /// Value of a rank-0 or single-element tensor.
  float item() const;

  // --- Structure -------------------------------------------------------

  /// Returns a tensor sharing this buffer but with a different shape; the
  /// element counts must match. O(1).
  Tensor Reshape(Shape new_shape) const;

  /// Deep copy.
  Tensor Clone() const;

  /// Fills every element with `value` in place.
  void Fill(float value);

  /// Copies the contents of `src` (same total size) into this tensor's
  /// buffer, preserving this tensor's shape.
  void CopyDataFrom(const Tensor& src);

  /// Human-readable dump (small tensors only; large ones are summarised).
  std::string ToString() const;

 private:
  std::shared_ptr<pool::FloatBuffer> data_;
  Shape shape_;
  int64_t size_ = 0;

  int64_t FlatIndex(std::initializer_list<int64_t> index) const;
};

/// Streams Tensor::ToString().
std::ostream& operator<<(std::ostream& os, const Tensor& t);

/// True when shapes are identical.
bool SameShape(const Tensor& a, const Tensor& b);

}  // namespace stwa

#endif  // STWA_TENSOR_TENSOR_H_
