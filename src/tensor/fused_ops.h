// Fused kernels backing the plan-rewrite passes (ir/rewrite.cc).
//
// FusedMap executes a whole elementwise chain — stage program encoded as
// (opcode, side-slot, swapped) triples plus a per-stage scalar — in one
// pooled pass over the value stream: one load of the head input, one
// store of the chain result, side inputs streamed at the same offsets.
// Per element it computes exactly what the unfused op sequence computes
// (simd/fused.h routes every stage through the same dual functors), so
// fusion never changes a bit; it only removes the interior tensors and
// the extra memory sweeps.
//
// FusedAttention executes the softmax(Q·Kᵀ·scale)·V quad one batch slice
// at a time against a per-worker [m, n] score scratch — the full batched
// score tensor is never materialised. Each sub-step reuses the exact
// kernels of the unfused path (per-row NN GEMM, the MulScalar lanes, the
// shared softmax row routine), so the fused result is bit-identical to
// the four-node subgraph it replaces.

#ifndef STWA_TENSOR_FUSED_OPS_H_
#define STWA_TENSOR_FUSED_OPS_H_

#include <cstdint>
#include <vector>

#include "simd/fused.h"
#include "tensor/tensor.h"

namespace stwa {
namespace ops {

/// Runs the fused chain over `head`. `program` holds 3 ints per stage:
/// {opcode (simd::FusedOp), side slot into `sides` (-1 for unary/scalar
/// stages), swapped (1 when the chain value is the right operand)}.
/// `scalars[s]` is stage s's scalar (kAddScalar/kMulScalar). Every side
/// must have the head's shape.
Tensor FusedMap(const Tensor& head, const std::vector<Tensor>& sides,
                const std::vector<int64_t>& program,
                const std::vector<float>& scalars);

/// softmax(q @ kt * scale) @ v with q [..., m, k], kt [..., k, n] (the key
/// transpose stays an explicit plan node — its kernel is not bit-compatible
/// with the fused-transpose GEMM path) and v [..., n, d]; batch dims must
/// be equal on all three (the rewriter only fuses such quads). Scores live
/// in a per-worker [m, n] scratch; the output is [..., m, d].
Tensor FusedAttention(const Tensor& q, const Tensor& kt, const Tensor& v,
                      float scale);

}  // namespace ops
}  // namespace stwa

#endif  // STWA_TENSOR_FUSED_OPS_H_
