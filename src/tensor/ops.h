// Non-differentiable tensor kernels.
//
// These free functions implement the numeric operations on raw Tensors; the
// autograd layer (src/autograd) builds differentiable wrappers on top of
// them. All binary elementwise operations support NumPy-style broadcasting
// (shapes aligned from the right; extent-1 dimensions stretch).

#ifndef STWA_TENSOR_OPS_H_
#define STWA_TENSOR_OPS_H_

#include <functional>
#include <vector>

#include "common/check.h"
#include "runtime/parallel.h"
#include "simd/simd.h"
#include "tensor/tensor.h"

namespace stwa {
namespace ops {

namespace detail {
/// Minimum number of elementwise-op-equivalents a ParallelFor chunk should
/// amortise thread handoff over (shared by the header map templates and
/// the kernels in ops.cc).
constexpr int64_t kMinChunkWork = 16384;

/// Vectorized chunk body shared by the map templates: full vectors, then
/// one partial vector for the ragged tail. The tail runs the same lane
/// operations as a full vector (simd.h determinism contract), so results
/// do not depend on where ParallelFor put the chunk boundary.
template <typename Fn>
inline void VecUnaryRange(float* po, const float* pa, int64_t begin,
                          int64_t end, const Fn& fn) {
  constexpr int64_t W = simd::Vec::kWidth;
  int64_t i = begin;
  for (; i + W <= end; i += W) fn(simd::Vec::Load(pa + i)).Store(po + i);
  if (i < end) {
    simd::StorePartial(fn(simd::LoadPartial(pa + i, end - i)), po + i,
                       end - i);
  }
}

template <typename Fn>
inline void VecBinaryRange(float* po, const float* pa, const float* pb,
                           int64_t begin, int64_t end, const Fn& fn) {
  constexpr int64_t W = simd::Vec::kWidth;
  int64_t i = begin;
  for (; i + W <= end; i += W) {
    fn(simd::Vec::Load(pa + i), simd::Vec::Load(pb + i)).Store(po + i);
  }
  if (i < end) {
    const int64_t rem = end - i;
    simd::StorePartial(
        fn(simd::LoadPartial(pa + i, rem), simd::LoadPartial(pb + i, rem)),
        po + i, rem);
  }
}
}  // namespace detail

// --- Templated elementwise maps ----------------------------------------
//
// These compile the functor directly into the loop — no std::function
// type erasure, no per-element indirect call. The named elementwise ops
// below (Exp, Tanh, Add, ...) and the autograd backward closures are built
// on them; the std::function-based UnaryOp/BinaryOp remain only as the
// type-erased escape hatch (and as the "old path" dispatch baseline in
// bench_kernels).
//
// Functors that also provide a Vec overload (simd/vec_math.h) are
// vectorized automatically on SIMD builds; plain scalar functors — and
// every functor on an STWA_NO_SIMD build — take the scalar loop, which is
// the pre-SIMD code path unchanged.

/// out[i] = fn(a[i]). The output buffer is uninitialised (pooled) — every
/// element is written exactly once.
template <typename Fn>
Tensor UnaryMap(const Tensor& a, Fn fn) {
  Tensor out = Tensor::Uninit(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  runtime::ParallelFor(0, a.size(), detail::kMinChunkWork,
                       [po, pa, &fn](int64_t begin, int64_t end) {
                         if constexpr (simd::kEnabled &&
                                       simd::kIsVecUnary<Fn>) {
                           detail::VecUnaryRange(po, pa, begin, end, fn);
                         } else {
                           for (int64_t i = begin; i < end; ++i) {
                             po[i] = fn(pa[i]);
                           }
                         }
                       });
  return out;
}

/// out[i] = fn(a[i], b[i]); same-shape operands only (broadcasting goes
/// through BinaryOp / the named ops).
template <typename Fn>
Tensor BinaryMap(const Tensor& a, const Tensor& b, Fn fn) {
  STWA_CHECK(a.shape() == b.shape(), "BinaryMap shape mismatch: ",
             ShapeToString(a.shape()), " vs ", ShapeToString(b.shape()));
  Tensor out = Tensor::Uninit(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  runtime::ParallelFor(0, a.size(), detail::kMinChunkWork,
                       [po, pa, pb, &fn](int64_t begin, int64_t end) {
                         if constexpr (simd::kEnabled &&
                                       simd::kIsVecBinary<Fn>) {
                           detail::VecBinaryRange(po, pa, pb, begin, end,
                                                  fn);
                         } else {
                           for (int64_t i = begin; i < end; ++i) {
                             po[i] = fn(pa[i], pb[i]);
                           }
                         }
                       });
  return out;
}

/// a[i] = fn(a[i]) in place. The caller must own the buffer exclusively
/// (use_count() == 1) or be updating an explicitly owned grad buffer.
template <typename Fn>
void UnaryMapInPlace(Tensor& a, Fn fn) {
  float* pa = a.data();
  runtime::ParallelFor(0, a.size(), detail::kMinChunkWork,
                       [pa, &fn](int64_t begin, int64_t end) {
                         if constexpr (simd::kEnabled &&
                                       simd::kIsVecUnary<Fn>) {
                           detail::VecUnaryRange(pa, pa, begin, end, fn);
                         } else {
                           for (int64_t i = begin; i < end; ++i) {
                             pa[i] = fn(pa[i]);
                           }
                         }
                       });
}

// --- Shape algebra -----------------------------------------------------

/// Returns the broadcast result shape of `a` and `b`; throws if the shapes
/// are incompatible.
Shape BroadcastShapes(const Shape& a, const Shape& b);

/// Row-major strides of a shape.
std::vector<int64_t> Strides(const Shape& shape);

// --- Elementwise binary (broadcasting) ---------------------------------

Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);
Tensor Maximum(const Tensor& a, const Tensor& b);
Tensor Minimum(const Tensor& a, const Tensor& b);

/// Generic broadcasting binary op with a custom combiner.
Tensor BinaryOp(const Tensor& a, const Tensor& b,
                const std::function<float(float, float)>& fn);

// --- Elementwise with scalar -------------------------------------------

Tensor AddScalar(const Tensor& a, float s);
Tensor MulScalar(const Tensor& a, float s);

// --- Elementwise unary --------------------------------------------------

Tensor Neg(const Tensor& a);
Tensor Exp(const Tensor& a);
Tensor Log(const Tensor& a);
Tensor Sqrt(const Tensor& a);
Tensor Abs(const Tensor& a);
Tensor Square(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor Relu(const Tensor& a);

/// Generic unary op with a custom map.
Tensor UnaryOp(const Tensor& a, const std::function<float(float)>& fn);

// --- Linear algebra ------------------------------------------------------

/// 2-D matrix product [m,k] x [k,n] -> [m,n].
Tensor MatMul2D(const Tensor& a, const Tensor& b);

/// Batched matrix product. Accepts [..., m, k] x [..., k, n] where the
/// leading batch dimensions are equal, or either operand is rank-2 (then it
/// is shared across the other's batch).
Tensor MatMul(const Tensor& a, const Tensor& b);

/// Batched a @ b^T without materialising the transpose:
/// [..., m, k] x [..., n, k] -> [..., m, n]. Batch dims broadcast like
/// MatMul. Both operands are read contiguously along k (dot-product form);
/// the k accumulation order is ascending, as in MatMul.
Tensor MatMulNT(const Tensor& a, const Tensor& b);

/// Batched a^T @ b without materialising the transpose:
/// [..., k, m] x [..., k, n] -> [..., m, n]. Batch dims broadcast like
/// MatMul; the k accumulation order is ascending. Together with MatMulNT
/// this fuses the two matmul-backward products (dA = g @ B^T, dB = A^T @ g)
/// into single allocation-free-transpose kernels.
Tensor MatMulTN(const Tensor& a, const Tensor& b);

/// Swaps the last two dimensions (materialises a new tensor).
Tensor TransposeLast2(const Tensor& a);

/// General axis permutation; `axes` is a permutation of [0, rank).
Tensor Permute(const Tensor& a, const std::vector<int64_t>& axes);

// --- Reductions ----------------------------------------------------------

/// Sum of all elements (rank-0 result).
Tensor SumAll(const Tensor& a);

/// Mean of all elements (rank-0 result).
Tensor MeanAll(const Tensor& a);

/// Sum over one axis. With keepdims the reduced axis has extent 1,
/// otherwise it is removed.
Tensor Sum(const Tensor& a, int64_t axis, bool keepdims = false);

/// Mean over one axis.
Tensor Mean(const Tensor& a, int64_t axis, bool keepdims = false);

/// Max over one axis.
Tensor Max(const Tensor& a, int64_t axis, bool keepdims = false);

/// Index of the max along the last axis (float-valued indices).
Tensor ArgMaxLast(const Tensor& a);

/// Sums `grad` down to `shape` (inverse of broadcasting); used by autograd
/// backward passes. `shape` must be broadcast-compatible with grad's shape.
Tensor ReduceToShape(const Tensor& grad, const Shape& shape);

/// Materialises `a` broadcast up to `shape` (no arithmetic; the inverse
/// direction of ReduceToShape). Used by Sum's backward pass.
Tensor BroadcastTo(const Tensor& a, const Shape& shape);

// --- Softmax -------------------------------------------------------------

/// Numerically stable softmax along the last axis. Fused: the exp and the
/// normalising sum live in the output buffer / a scalar — no intermediate
/// exp/sum tensors are materialised.
Tensor SoftmaxLast(const Tensor& a);

/// Fused softmax backward: dx = y * (g - sum(g * y, last)) in one pass per
/// row, with no intermediate product/sum tensors. `y` is the softmax
/// output, `g` the incoming gradient (same shape).
Tensor SoftmaxLastBackward(const Tensor& y, const Tensor& g);

// --- Structure -----------------------------------------------------------

/// Concatenates tensors along `axis`; all other extents must match.
Tensor Concat(const std::vector<Tensor>& parts, int64_t axis);

/// Copies the half-open range [start, start+len) of `axis`.
Tensor Slice(const Tensor& a, int64_t axis, int64_t start, int64_t len);

/// Stacks equal-shaped tensors along a new leading axis.
Tensor Stack(const std::vector<Tensor>& parts);

/// Selects rows (axis 0) by index, e.g. embedding lookup.
Tensor IndexSelect0(const Tensor& a, const std::vector<int64_t>& indices);

/// Adds `src` rows into `dst` at the given axis-0 indices (scatter-add).
void ScatterAddRows(Tensor& dst, const std::vector<int64_t>& indices,
                    const Tensor& src);

// --- In-place / fused accumulation ---------------------------------------
//
// Safety rule (DESIGN.md "Memory management"): in-place kernels may only
// target tensors whose buffer is exclusively owned (use_count() == 1) or
// explicitly owned accumulation buffers (autograd grads, optimizer state).

/// dst += src (same shape required).
void AddInPlace(Tensor& dst, const Tensor& src);

/// dst *= src (same shape required).
void MulInPlace(Tensor& dst, const Tensor& src);

/// dst += s * src (same shape required).
void AxpyInPlace(Tensor& dst, float s, const Tensor& src);

/// dst *= s.
void MulScalarInPlace(Tensor& dst, float s);

/// dst += a * b elementwise (all three the same shape); fuses the
/// product-then-accumulate pattern of multiplicative backward passes
/// without materialising the product.
void AddMulInPlace(Tensor& dst, const Tensor& a, const Tensor& b);

// --- Comparisons / stats --------------------------------------------------

/// Max |a - b| over all elements; shapes must match.
float MaxAbsDiff(const Tensor& a, const Tensor& b);

/// True when all |a-b| <= atol + rtol*|b| elementwise.
bool AllClose(const Tensor& a, const Tensor& b, float rtol = 1e-4f,
              float atol = 1e-5f);

}  // namespace ops
}  // namespace stwa

#endif  // STWA_TENSOR_OPS_H_
