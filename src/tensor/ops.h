// Non-differentiable tensor kernels.
//
// These free functions implement the numeric operations on raw Tensors; the
// autograd layer (src/autograd) builds differentiable wrappers on top of
// them. All binary elementwise operations support NumPy-style broadcasting
// (shapes aligned from the right; extent-1 dimensions stretch).

#ifndef STWA_TENSOR_OPS_H_
#define STWA_TENSOR_OPS_H_

#include <functional>
#include <vector>

#include "tensor/tensor.h"

namespace stwa {
namespace ops {

// --- Shape algebra -----------------------------------------------------

/// Returns the broadcast result shape of `a` and `b`; throws if the shapes
/// are incompatible.
Shape BroadcastShapes(const Shape& a, const Shape& b);

/// Row-major strides of a shape.
std::vector<int64_t> Strides(const Shape& shape);

// --- Elementwise binary (broadcasting) ---------------------------------

Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);
Tensor Maximum(const Tensor& a, const Tensor& b);
Tensor Minimum(const Tensor& a, const Tensor& b);

/// Generic broadcasting binary op with a custom combiner.
Tensor BinaryOp(const Tensor& a, const Tensor& b,
                const std::function<float(float, float)>& fn);

// --- Elementwise with scalar -------------------------------------------

Tensor AddScalar(const Tensor& a, float s);
Tensor MulScalar(const Tensor& a, float s);

// --- Elementwise unary --------------------------------------------------

Tensor Neg(const Tensor& a);
Tensor Exp(const Tensor& a);
Tensor Log(const Tensor& a);
Tensor Sqrt(const Tensor& a);
Tensor Abs(const Tensor& a);
Tensor Square(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor Relu(const Tensor& a);

/// Generic unary op with a custom map.
Tensor UnaryOp(const Tensor& a, const std::function<float(float)>& fn);

// --- Linear algebra ------------------------------------------------------

/// 2-D matrix product [m,k] x [k,n] -> [m,n].
Tensor MatMul2D(const Tensor& a, const Tensor& b);

/// Batched matrix product. Accepts [..., m, k] x [..., k, n] where the
/// leading batch dimensions are equal, or either operand is rank-2 (then it
/// is shared across the other's batch).
Tensor MatMul(const Tensor& a, const Tensor& b);

/// Swaps the last two dimensions (materialises a new tensor).
Tensor TransposeLast2(const Tensor& a);

/// General axis permutation; `axes` is a permutation of [0, rank).
Tensor Permute(const Tensor& a, const std::vector<int64_t>& axes);

// --- Reductions ----------------------------------------------------------

/// Sum of all elements (rank-0 result).
Tensor SumAll(const Tensor& a);

/// Mean of all elements (rank-0 result).
Tensor MeanAll(const Tensor& a);

/// Sum over one axis. With keepdims the reduced axis has extent 1,
/// otherwise it is removed.
Tensor Sum(const Tensor& a, int64_t axis, bool keepdims = false);

/// Mean over one axis.
Tensor Mean(const Tensor& a, int64_t axis, bool keepdims = false);

/// Max over one axis.
Tensor Max(const Tensor& a, int64_t axis, bool keepdims = false);

/// Index of the max along the last axis (float-valued indices).
Tensor ArgMaxLast(const Tensor& a);

/// Sums `grad` down to `shape` (inverse of broadcasting); used by autograd
/// backward passes. `shape` must be broadcast-compatible with grad's shape.
Tensor ReduceToShape(const Tensor& grad, const Shape& shape);

// --- Softmax -------------------------------------------------------------

/// Numerically stable softmax along the last axis.
Tensor SoftmaxLast(const Tensor& a);

// --- Structure -----------------------------------------------------------

/// Concatenates tensors along `axis`; all other extents must match.
Tensor Concat(const std::vector<Tensor>& parts, int64_t axis);

/// Copies the half-open range [start, start+len) of `axis`.
Tensor Slice(const Tensor& a, int64_t axis, int64_t start, int64_t len);

/// Stacks equal-shaped tensors along a new leading axis.
Tensor Stack(const std::vector<Tensor>& parts);

/// Selects rows (axis 0) by index, e.g. embedding lookup.
Tensor IndexSelect0(const Tensor& a, const std::vector<int64_t>& indices);

/// Adds `src` rows into `dst` at the given axis-0 indices (scatter-add).
void ScatterAddRows(Tensor& dst, const std::vector<int64_t>& indices,
                    const Tensor& src);

// --- In-place accumulation (used by autograd grad buffers) ---------------

/// dst += src (same shape required).
void AddInPlace(Tensor& dst, const Tensor& src);

/// dst += s * src (same shape required).
void AxpyInPlace(Tensor& dst, float s, const Tensor& src);

// --- Comparisons / stats --------------------------------------------------

/// Max |a - b| over all elements; shapes must match.
float MaxAbsDiff(const Tensor& a, const Tensor& b);

/// True when all |a-b| <= atol + rtol*|b| elementwise.
bool AllClose(const Tensor& a, const Tensor& b, float rtol = 1e-4f,
              float atol = 1e-5f);

}  // namespace ops
}  // namespace stwa

#endif  // STWA_TENSOR_OPS_H_
