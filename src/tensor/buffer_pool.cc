#include "tensor/buffer_pool.h"

#include <algorithm>
#include <mutex>

#include "common/string_util.h"

namespace stwa {
namespace pool {
namespace {

// Smallest bucket: 256 floats (1 KiB). Tiny buffers bucket together so the
// scalar-heavy autograd tape still hits the same free list.
constexpr int64_t kMinBucketElements = 256;
// Buckets cover capacities 2^8 .. 2^55 floats — effectively unbounded.
constexpr int kNumBuckets = 48;
// Default cap on idle pooled bytes; STWA_POOL_MAX_BYTES overrides.
constexpr uint64_t kMaxPooledBytes = 1ull << 30;  // 1 GiB

// Bucket index for a request of n floats: smallest power-of-two capacity
// >= max(n, kMinBucketElements).
int BucketIndex(int64_t n) {
  int64_t cap = kMinBucketElements;
  int idx = 0;
  while (cap < n) {
    cap <<= 1;
    ++idx;
  }
  return idx;
}

int64_t BucketCapacity(int idx) { return kMinBucketElements << idx; }

struct Pool {
  std::mutex mu;
  // Raw pointers: ownership passes to the shared_ptr deleter on acquire and
  // back to the free list on release.
  std::vector<FloatBuffer*> free_lists[kNumBuckets];
  bool enabled = true;
  uint64_t max_pooled_bytes = kMaxPooledBytes;
  PoolStats stats;
};

// Leaky singleton: never destroyed, so buffer releases during static
// destruction (e.g. globals holding Tensors) stay safe.
Pool& GetPool() {
  static Pool* p = [] {
    Pool* pool = new Pool;
    pool->enabled = GetEnvIntOr("STWA_DISABLE_POOL", 0) == 0;
    pool->max_pooled_bytes = static_cast<uint64_t>(GetEnvIntOr(
        "STWA_POOL_MAX_BYTES", static_cast<int64_t>(kMaxPooledBytes)));
    return pool;
  }();
  return *p;
}

// Returns the buffer to its bucket's free list (or frees it when the pool
// is full or disabled).
struct PooledDeleter {
  int bucket;
  void operator()(FloatBuffer* v) const {
    Pool& p = GetPool();
    const uint64_t bytes = BucketCapacity(bucket) * sizeof(float);
    std::lock_guard<std::mutex> lock(p.mu);
    p.stats.outstanding_buffers--;
    p.stats.outstanding_bytes -= bytes;
    if (p.enabled && p.stats.pooled_bytes + bytes <= p.max_pooled_bytes) {
      p.free_lists[bucket].push_back(v);
      p.stats.pooled_bytes += bytes;
    } else {
      delete v;
    }
  }
};

}  // namespace

std::shared_ptr<FloatBuffer> Acquire(int64_t n) {
  if (n <= 0) return std::make_shared<FloatBuffer>();
  Pool& p = GetPool();
  const int bucket = BucketIndex(n);
  if (bucket >= kNumBuckets) {
    // Beyond the largest bucket: plain heap allocation, not recycled.
    std::lock_guard<std::mutex> lock(p.mu);
    ++p.stats.requests;
    ++p.stats.misses;
    return std::make_shared<FloatBuffer>(n);
  }
  const int64_t cap = BucketCapacity(bucket);
  const uint64_t bytes = cap * sizeof(float);
  FloatBuffer* raw = nullptr;
  {
    std::lock_guard<std::mutex> lock(p.mu);
    ++p.stats.requests;
    if (p.enabled && !p.free_lists[bucket].empty()) {
      raw = p.free_lists[bucket].back();
      p.free_lists[bucket].pop_back();
      p.stats.pooled_bytes -= bytes;
      ++p.stats.hits;
    } else {
      ++p.stats.misses;
    }
    p.stats.outstanding_buffers++;
    p.stats.outstanding_bytes += bytes;
    p.stats.peak_outstanding_bytes =
        std::max(p.stats.peak_outstanding_bytes, p.stats.outstanding_bytes);
  }
  if (raw == nullptr) raw = new FloatBuffer(cap);
  return std::shared_ptr<FloatBuffer>(raw, PooledDeleter{bucket});
}

bool Enabled() {
  Pool& p = GetPool();
  std::lock_guard<std::mutex> lock(p.mu);
  return p.enabled;
}

void SetEnabled(bool enabled) {
  Pool& p = GetPool();
  std::vector<FloatBuffer*> drained;
  {
    std::lock_guard<std::mutex> lock(p.mu);
    p.enabled = enabled;
    if (!enabled) {
      for (auto& list : p.free_lists) {
        for (FloatBuffer* v : list) drained.push_back(v);
        list.clear();
      }
      p.stats.pooled_bytes = 0;
    }
  }
  for (FloatBuffer* v : drained) delete v;
}

PoolStats Stats() {
  Pool& p = GetPool();
  std::lock_guard<std::mutex> lock(p.mu);
  return p.stats;
}

void ResetStats() {
  Pool& p = GetPool();
  std::lock_guard<std::mutex> lock(p.mu);
  p.stats.requests = 0;
  p.stats.hits = 0;
  p.stats.misses = 0;
  p.stats.peak_outstanding_bytes = p.stats.outstanding_bytes;
}

void Trim() {
  Pool& p = GetPool();
  std::vector<FloatBuffer*> drained;
  {
    std::lock_guard<std::mutex> lock(p.mu);
    for (auto& list : p.free_lists) {
      for (FloatBuffer* v : list) drained.push_back(v);
      list.clear();
    }
    p.stats.pooled_bytes = 0;
  }
  for (FloatBuffer* v : drained) delete v;
}

}  // namespace pool
}  // namespace stwa
