#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <type_traits>

#include "common/check.h"
#include "runtime/parallel.h"
#include "simd/fused.h"
#include "simd/gemm.h"
#include "simd/gemm_lowp.h"
#include "simd/vec_math.h"
#include "tensor/fused_ops.h"
#include "tensor/lowp_cache.h"

namespace stwa {
namespace ops {
namespace {

// Grain sizes below derive from the shared per-chunk work floor.
using detail::kMinChunkWork;

// SIMD kernels below follow the simd.h determinism contract: ragged tails
// use partial vector loads/stores (never scalar remainder loops), lane
// reductions combine in a fixed tree, and kernel selection depends only
// on the shape — so within one build, results are bit-identical across
// thread counts, pool on/off and plan on/off. On STWA_NO_SIMD builds
// (simd::kEnabled == false) every `if constexpr` below compiles the
// legacy scalar kernel, keeping scalar builds bit-identical to PR 4.
using simd::Vec;
constexpr int64_t kVecW = Vec::kWidth;

// Odometer-style iteration over an output shape with per-input strides
// that are zero on broadcast dimensions, split across the worker pool.
// The output is visited one innermost row at a time: fn(out_flat, a_off,
// b_off, len, a_stride, b_stride) handles a whole run, the odometer
// advances once per run instead of once per element, and the caller's
// inner loop sees fixed strides (0 or the innermost stride) so broadcast
// bias-adds vectorise. Element visit order is row-major and every flat
// output index belongs to exactly one chunk, so results match the serial
// loop bit-for-bit at any thread count.
template <typename Fn>
void ForEachBroadcastRuns(const Shape& out_shape,
                          const std::vector<int64_t>& a_strides,
                          const std::vector<int64_t>& b_strides, Fn&& fn) {
  const int64_t rank = static_cast<int64_t>(out_shape.size());
  const int64_t total = NumElements(out_shape);
  if (total == 0) return;
  if (rank == 0) {
    fn(0, 0, 0, 1, 0, 0);
    return;
  }
  const int64_t inner = out_shape[rank - 1];
  const int64_t sa = a_strides[rank - 1];
  const int64_t sb = b_strides[rank - 1];
  const int64_t outer = rank - 1;
  const int64_t num_runs = total / std::max<int64_t>(1, inner);
  const int64_t* shape_p = out_shape.data();
  const int64_t* as_p = a_strides.data();
  const int64_t* bs_p = b_strides.data();
  runtime::ParallelFor(
      0, num_runs, std::max<int64_t>(1, kMinChunkWork / inner),
      [shape_p, as_p, bs_p, outer, inner, sa, sb, &fn](int64_t r0,
                                                       int64_t r1) {
        std::vector<int64_t> idx(outer, 0);
        int64_t a_off = 0;
        int64_t b_off = 0;
        int64_t rem = r0;
        for (int64_t d = outer - 1; d >= 0; --d) {
          idx[d] = rem % shape_p[d];
          rem /= shape_p[d];
          a_off += idx[d] * as_p[d];
          b_off += idx[d] * bs_p[d];
        }
        for (int64_t r = r0; r < r1; ++r) {
          fn(r * inner, a_off, b_off, inner, sa, sb);
          for (int64_t d = outer - 1; d >= 0; --d) {
            ++idx[d];
            a_off += as_p[d];
            b_off += bs_p[d];
            if (idx[d] < shape_p[d]) break;
            a_off -= as_p[d] * shape_p[d];
            b_off -= bs_p[d] * shape_p[d];
            idx[d] = 0;
          }
        }
      });
}

// Strides of `shape` aligned to `out_rank` dims, with 0 stride where the
// dimension is broadcast (missing or extent 1 against a larger extent).
std::vector<int64_t> BroadcastStrides(const Shape& shape,
                                      const Shape& out_shape) {
  const int64_t out_rank = static_cast<int64_t>(out_shape.size());
  const int64_t rank = static_cast<int64_t>(shape.size());
  std::vector<int64_t> strides = Strides(shape);
  std::vector<int64_t> out(out_rank, 0);
  for (int64_t d = 0; d < rank; ++d) {
    int64_t out_d = out_rank - rank + d;
    if (shape[d] == out_shape[out_d]) {
      out[out_d] = strides[d];
    } else {
      STWA_CHECK(shape[d] == 1, "broadcast mismatch: ", ShapeToString(shape),
                 " vs ", ShapeToString(out_shape));
      out[out_d] = 0;
    }
  }
  return out;
}

// One broadcast run with a constant side: out[j] = fn(row[j], cv) (or
// fn(cv, row[j]) with SwapArgs). Vectorized with a broadcast lane for the
// constant; run boundaries are shape-derived, so tails are deterministic.
template <bool SwapArgs, typename Fn>
inline void VecRunWithConst(float* po, const float* row, float cv,
                            int64_t len, const Fn& fn) {
  const Vec c = Vec::Broadcast(cv);
  int64_t j = 0;
  for (; j + kVecW <= len; j += kVecW) {
    const Vec r = Vec::Load(row + j);
    (SwapArgs ? fn(c, r) : fn(r, c)).Store(po + j);
  }
  if (j < len) {
    const int64_t rem = len - j;
    const Vec r = simd::LoadPartial(row + j, rem);
    simd::StorePartial(SwapArgs ? fn(c, r) : fn(r, c), po + j, rem);
  }
}

template <typename Fn>
Tensor BinaryImpl(const Tensor& a, const Tensor& b, Fn&& fn) {
  using RawFn = std::remove_cvref_t<Fn>;
  constexpr bool kVec = simd::kEnabled && simd::kIsVecBinary<RawFn>;
  if (a.shape() == b.shape()) {
    Tensor out = Tensor::Uninit(a.shape());
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.data();
    runtime::ParallelFor(0, a.size(), kMinChunkWork,
                         [po, pa, pb, &fn](int64_t begin, int64_t end) {
                           if constexpr (kVec) {
                             detail::VecBinaryRange(po, pa, pb, begin, end,
                                                    fn);
                           } else {
                             for (int64_t i = begin; i < end; ++i) {
                               po[i] = fn(pa[i], pb[i]);
                             }
                           }
                         });
    return out;
  }
  Shape out_shape = BroadcastShapes(a.shape(), b.shape());
  Tensor out = Tensor::Uninit(out_shape);
  auto as = BroadcastStrides(a.shape(), out_shape);
  auto bs = BroadcastStrides(b.shape(), out_shape);
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  ForEachBroadcastRuns(
      out_shape, as, bs,
      [po, pa, pb, &fn](int64_t o, int64_t a0, int64_t b0, int64_t len,
                        int64_t sa, int64_t sb) {
        // Specialise the common stride patterns so the inner loop
        // vectorises: bias-add style (one side constant) and elementwise
        // rows (both advancing). Generic strides stay scalar (arithmetic
        // functors compute identical values either way).
        if (sa == 1 && sb == 0) {
          if constexpr (kVec) {
            VecRunWithConst<false>(po + o, pa + a0, pb[b0], len, fn);
          } else {
            const float bv = pb[b0];
            for (int64_t j = 0; j < len; ++j) po[o + j] = fn(pa[a0 + j], bv);
          }
        } else if (sa == 0 && sb == 1) {
          if constexpr (kVec) {
            VecRunWithConst<true>(po + o, pb + b0, pa[a0], len, fn);
          } else {
            const float av = pa[a0];
            for (int64_t j = 0; j < len; ++j) po[o + j] = fn(av, pb[b0 + j]);
          }
        } else if (sa == 1 && sb == 1) {
          if constexpr (kVec) {
            detail::VecBinaryRange(po + o, pa + a0, pb + b0, 0, len, fn);
          } else {
            for (int64_t j = 0; j < len; ++j) {
              po[o + j] = fn(pa[a0 + j], pb[b0 + j]);
            }
          }
        } else {
          for (int64_t j = 0; j < len; ++j) {
            po[o + j] = fn(pa[a0 + j * sa], pb[b0 + j * sb]);
          }
        }
      });
  return out;
}

template <typename Fn>
Tensor UnaryImpl(const Tensor& a, Fn&& fn) {
  Tensor out = Tensor::Uninit(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  runtime::ParallelFor(0, a.size(), kMinChunkWork,
                       [po, pa, &fn](int64_t begin, int64_t end) {
                         for (int64_t i = begin; i < end; ++i) {
                           po[i] = fn(pa[i]);
                         }
                       });
  return out;
}

int64_t NormalizeAxis(int64_t axis, int64_t rank) {
  if (axis < 0) axis += rank;
  STWA_CHECK(axis >= 0 && axis < rank, "axis ", axis,
             " out of range for rank ", rank);
  return axis;
}

// Collapses `shape` around `axis` into (outer, extent, inner).
void AxisSplit(const Shape& shape, int64_t axis, int64_t* outer,
               int64_t* extent, int64_t* inner) {
  *outer = 1;
  *inner = 1;
  for (int64_t d = 0; d < axis; ++d) *outer *= shape[d];
  *extent = shape[axis];
  for (int64_t d = axis + 1; d < static_cast<int64_t>(shape.size()); ++d) {
    *inner *= shape[d];
  }
}

// Matmul row kernel: accumulates A[i0:i1, :] * B into O[i0:i1, :]. Large k
// is blocked so a panel of B stays hot in cache while it is reused across
// the rows of the chunk; small k skips the blocking pass so each out row is
// written exactly once. Within one output element the k accumulation order
// stays ascending either way, identical to the naive i-k-j loop, so
// blocking does not change the result. The inner j loop is contiguous on
// both B and O, which auto-vectorises well.
void MatMulRowRange(const float* __restrict__ A, const float* __restrict__ B,
                    float* __restrict__ O, int64_t i0, int64_t i1, int64_t k,
                    int64_t n) {
  constexpr int64_t kBlockK = 512;
  if (k <= kBlockK) {
    // Single k panel: plain i-k-j sweep, one write pass over each out row.
    for (int64_t i = i0; i < i1; ++i) {
      float* __restrict__ out_row = O + i * n;
      const float* __restrict__ a_row = A + i * k;
      for (int64_t kk = 0; kk < k; ++kk) {
        const float aik = a_row[kk];
        if (aik == 0.0f) continue;
        const float* __restrict__ b_row = B + kk * n;
        for (int64_t j = 0; j < n; ++j) out_row[j] += aik * b_row[j];
      }
    }
    return;
  }
  for (int64_t kb = 0; kb < k; kb += kBlockK) {
    const int64_t ke = std::min(k, kb + kBlockK);
    for (int64_t i = i0; i < i1; ++i) {
      float* __restrict__ out_row = O + i * n;
      const float* __restrict__ a_row = A + i * k;
      for (int64_t kk = kb; kk < ke; ++kk) {
        const float aik = a_row[kk];
        if (aik == 0.0f) continue;
        const float* __restrict__ b_row = B + kk * n;
        for (int64_t j = 0; j < n; ++j) out_row[j] += aik * b_row[j];
      }
    }
  }
}

// Row grain so one chunk holds at least ~kMinChunkWork multiply-adds.
int64_t MatMulRowGrain(int64_t k, int64_t n) {
  const int64_t flops_per_row = std::max<int64_t>(1, k * n);
  return std::max<int64_t>(1, kMinChunkWork / flops_per_row);
}

// Row kernels for the transposed-operand products. Both write each output
// element exactly once (safe on Uninit storage) and accumulate k in
// ascending order, so results are chunking-independent.

// O[i, j] = dot(A[i, :], B[j, :]); A is [m, k], B is [n, k]. Both reads
// are contiguous along k — the transpose never materialises. The dot uses
// 8 independent partial sums (a single accumulator is a serial FP
// dependency chain the compiler may not vectorise under strict IEEE
// semantics) combined in a fixed order, so the result is still
// independent of threading and chunking.
void MatMulNTRowRange(const float* __restrict__ A, const float* __restrict__ B,
                      float* __restrict__ O, int64_t i0, int64_t i1,
                      int64_t k, int64_t n) {
  constexpr int64_t kLanes = 8;
  for (int64_t i = i0; i < i1; ++i) {
    const float* __restrict__ a_row = A + i * k;
    float* __restrict__ out_row = O + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* __restrict__ b_row = B + j * k;
      float acc[kLanes] = {0.0f};
      int64_t kk = 0;
      for (; kk + kLanes <= k; kk += kLanes) {
        for (int64_t l = 0; l < kLanes; ++l) {
          acc[l] += a_row[kk + l] * b_row[kk + l];
        }
      }
      float s = ((acc[0] + acc[1]) + (acc[2] + acc[3])) +
                ((acc[4] + acc[5]) + (acc[6] + acc[7]));
      for (; kk < k; ++kk) s += a_row[kk] * b_row[kk];
      out_row[j] = s;
    }
  }
}

// O[i, j] = sum_kk A[kk, i] * B[kk, j]; A is [k, m], B is [k, n]. Same
// i-k-j sweep as MatMulRowRange, with A read down a column.
void MatMulTNRowRange(const float* __restrict__ A, const float* __restrict__ B,
                      float* __restrict__ O, int64_t i0, int64_t i1,
                      int64_t k, int64_t m, int64_t n) {
  for (int64_t i = i0; i < i1; ++i) {
    float* __restrict__ out_row = O + i * n;
    std::fill(out_row, out_row + n, 0.0f);
    for (int64_t kk = 0; kk < k; ++kk) {
      const float aki = A[kk * m + i];
      if (aki == 0.0f) continue;
      const float* __restrict__ b_row = B + kk * n;
      for (int64_t j = 0; j < n; ++j) out_row[j] += aki * b_row[j];
    }
  }
}

// Shared batched driver for the transposed-operand products: broadcasts
// the batch dims like MatMul and hands each (batch, row-range) pair to
// `row_fn(a_panel, b_panel, o_panel, i0, i1)`.
template <typename RowFn>
Tensor BatchedTransposedProduct(const Tensor& a, const Tensor& b, int64_t m,
                                int64_t n, int64_t k, RowFn&& row_fn) {
  Shape a_batch(a.shape().begin(), a.shape().end() - 2);
  Shape b_batch(b.shape().begin(), b.shape().end() - 2);
  Shape batch = BroadcastShapes(a_batch, b_batch);
  const int64_t batch_count = NumElements(batch);
  Shape out_shape = batch;
  out_shape.push_back(m);
  out_shape.push_back(n);
  Tensor out = Tensor::Uninit(out_shape);  // row kernels write every element
  if (out.size() == 0) return out;
  std::vector<int64_t> a_strides = BroadcastStrides(a_batch, batch);
  std::vector<int64_t> b_strides = BroadcastStrides(b_batch, batch);
  std::vector<int64_t> batch_strides = Strides(batch);
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  const int64_t a_mat = a.dim(-2) * a.dim(-1);
  const int64_t b_mat = b.dim(-2) * b.dim(-1);
  const int64_t o_mat = m * n;
  const int64_t* batch_p = batch_strides.data();
  const int64_t* as_p = a_strides.data();
  const int64_t* bs_p = b_strides.data();
  const int64_t batch_rank = static_cast<int64_t>(batch.size());
  runtime::ParallelFor(
      0, batch_count * m, MatMulRowGrain(k, n),
      [=, &row_fn](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1;) {
          const int64_t bi = r / m;
          const int64_t i0 = r % m;
          const int64_t i1 = std::min(m, i0 + (r1 - r));
          int64_t a_off = 0;
          int64_t b_off = 0;
          int64_t rem = bi;
          for (int64_t d = 0; d < batch_rank; ++d) {
            int64_t coord = rem / batch_p[d];
            rem %= batch_p[d];
            a_off += coord * as_p[d];
            b_off += coord * bs_p[d];
          }
          row_fn(pa + a_off * a_mat, pb + b_off * b_mat, po + bi * o_mat,
                 i0, i1);
          r += i1 - i0;
        }
      });
  return out;
}

}  // namespace

Shape BroadcastShapes(const Shape& a, const Shape& b) {
  const int64_t rank = std::max(a.size(), b.size());
  Shape out(rank);
  for (int64_t d = 0; d < rank; ++d) {
    int64_t ad = d >= rank - static_cast<int64_t>(a.size())
                     ? a[d - (rank - a.size())]
                     : 1;
    int64_t bd = d >= rank - static_cast<int64_t>(b.size())
                     ? b[d - (rank - b.size())]
                     : 1;
    STWA_CHECK(ad == bd || ad == 1 || bd == 1, "cannot broadcast ",
               ShapeToString(a), " with ", ShapeToString(b));
    out[d] = std::max(ad, bd);
  }
  return out;
}

std::vector<int64_t> Strides(const Shape& shape) {
  std::vector<int64_t> strides(shape.size());
  int64_t acc = 1;
  for (int64_t d = static_cast<int64_t>(shape.size()) - 1; d >= 0; --d) {
    strides[d] = acc;
    acc *= shape[d];
  }
  return strides;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  return BinaryImpl(a, b, simd::AddOp{});
}
Tensor Sub(const Tensor& a, const Tensor& b) {
  return BinaryImpl(a, b, simd::SubOp{});
}
Tensor Mul(const Tensor& a, const Tensor& b) {
  return BinaryImpl(a, b, simd::MulOp{});
}
Tensor Div(const Tensor& a, const Tensor& b) {
  return BinaryImpl(a, b, simd::DivOp{});
}
Tensor Maximum(const Tensor& a, const Tensor& b) {
  return BinaryImpl(a, b, simd::MaxOp{});
}
Tensor Minimum(const Tensor& a, const Tensor& b) {
  return BinaryImpl(a, b, simd::MinOp{});
}

Tensor BinaryOp(const Tensor& a, const Tensor& b,
                const std::function<float(float, float)>& fn) {
  return BinaryImpl(a, b, fn);
}

Tensor AddScalar(const Tensor& a, float s) {
  return UnaryMap(a, simd::AddScalarOp{s});
}
Tensor MulScalar(const Tensor& a, float s) {
  return UnaryMap(a, simd::MulScalarOp{s});
}

Tensor Neg(const Tensor& a) { return UnaryMap(a, simd::NegOp{}); }
Tensor Exp(const Tensor& a) { return UnaryMap(a, simd::ExpOp{}); }
Tensor Log(const Tensor& a) {
  // No vectorized log polynomial yet; stays scalar on every build.
  return UnaryImpl(a, [](float x) { return std::log(x); });
}
Tensor Sqrt(const Tensor& a) { return UnaryMap(a, simd::SqrtOp{}); }
Tensor Abs(const Tensor& a) { return UnaryMap(a, simd::AbsOp{}); }
Tensor Square(const Tensor& a) { return UnaryMap(a, simd::SquareOp{}); }
Tensor Tanh(const Tensor& a) { return UnaryMap(a, simd::TanhOp{}); }
Tensor Sigmoid(const Tensor& a) { return UnaryMap(a, simd::SigmoidOp{}); }
Tensor Relu(const Tensor& a) { return UnaryMap(a, simd::ReluOp{}); }

Tensor UnaryOp(const Tensor& a, const std::function<float(float)>& fn) {
  return UnaryImpl(a, fn);
}

Tensor MatMul2D(const Tensor& a, const Tensor& b) {
  STWA_CHECK(a.rank() == 2 && b.rank() == 2, "MatMul2D needs rank-2 inputs, ",
             ShapeToString(a.shape()), " x ", ShapeToString(b.shape()));
  const int64_t m = a.dim(0);
  const int64_t k = a.dim(1);
  const int64_t n = b.dim(1);
  STWA_CHECK(b.dim(0) == k, "inner dimensions mismatch: ",
             ShapeToString(a.shape()), " x ", ShapeToString(b.shape()));
  // Reduced-precision hook: a serving session registered prepacked bf16 /
  // int8 panels for this weight operand (tensor/lowp_cache.h). Selection
  // depends only on the operand pointer, so eager, plan replay and
  // region-parallel replay all dispatch the same way on any thread.
  if (const auto pack = lowp::Find(b.data(), k, n, /*trans=*/false)) {
    Tensor out = Tensor::Uninit(Shape{m, n});
    simd::GemmLowp(a.data(), *pack, out.data(), m, /*trans_a=*/false);
    return out;
  }
  if constexpr (simd::kEnabled) {
    // Gemm2D writes every element (packed or row path), so the output can
    // skip the zero fill the accumulating legacy kernel needed.
    Tensor out = Tensor::Uninit(Shape{m, n});
    simd::Gemm2D(a.data(), b.data(), out.data(), m, n, k,
                 /*trans_a=*/false, /*trans_b=*/false);
    return out;
  }
  Tensor out(Shape{m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  runtime::ParallelFor(0, m, MatMulRowGrain(k, n),
                       [pa, pb, po, k, n](int64_t i0, int64_t i1) {
                         MatMulRowRange(pa, pb, po, i0, i1, k, n);
                       });
  return out;
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  if (a.rank() == 2 && b.rank() == 2) return MatMul2D(a, b);
  STWA_CHECK(a.rank() >= 2 && b.rank() >= 2,
             "MatMul needs rank >= 2 inputs");
  // Normalise to equal batch shapes; a rank-2 operand is shared.
  Shape a_batch(a.shape().begin(), a.shape().end() - 2);
  Shape b_batch(b.shape().begin(), b.shape().end() - 2);
  Shape batch = BroadcastShapes(a_batch, b_batch);
  const int64_t m = a.dim(-2);
  const int64_t k = a.dim(-1);
  const int64_t n = b.dim(-1);
  STWA_CHECK(b.dim(-2) == k, "inner dimensions mismatch: ",
             ShapeToString(a.shape()), " x ", ShapeToString(b.shape()));
  const int64_t batch_count = NumElements(batch);
  Shape out_shape = batch;
  out_shape.push_back(m);
  out_shape.push_back(n);
  // A shared rank-2 B multiplies every batch matrix by the same weights,
  // so the whole product is one [batch*m, k] x [k, n] GEMM over A's
  // contiguous storage. The flat NN kernels are bit-identical to the
  // per-batch row kernels (the NN packed and row paths share their
  // k-ascending FMA chains — SimdGemmTest pins this), and the flatten is
  // what routes nn::Linear through the packed fp32 path and the
  // reduced-precision weight hook.
  if (b.rank() == 2) {
    const int64_t rows = batch_count * m;
    if (const auto pack = lowp::Find(b.data(), k, n, /*trans=*/false)) {
      Tensor out = Tensor::Uninit(out_shape);
      simd::GemmLowp(a.data(), *pack, out.data(), rows, /*trans_a=*/false);
      return out;
    }
    if constexpr (simd::kEnabled) {
      Tensor out = Tensor::Uninit(out_shape);
      simd::Gemm2D(a.data(), b.data(), out.data(), rows, n, k,
                   /*trans_a=*/false, /*trans_b=*/false);
      return out;
    } else {
      Tensor out(out_shape);
      const float* pa = a.data();
      const float* pb = b.data();
      float* po = out.data();
      runtime::ParallelFor(0, rows, MatMulRowGrain(k, n),
                           [pa, pb, po, k, n](int64_t i0, int64_t i1) {
                             MatMulRowRange(pa, pb, po, i0, i1, k, n);
                           });
      return out;
    }
  }
  // The SIMD row kernel writes every element; the legacy kernel
  // accumulates into zeros.
  Tensor out = simd::kEnabled ? Tensor::Uninit(out_shape)
                              : Tensor(out_shape);

  // Per-batch offsets honouring broadcasting over the batch dims.
  std::vector<int64_t> a_strides =
      BroadcastStrides(a_batch, batch);
  std::vector<int64_t> b_strides =
      BroadcastStrides(b_batch, batch);
  std::vector<int64_t> batch_strides = Strides(batch);

  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  const int64_t a_mat = m * k;
  const int64_t b_mat = k * n;
  const int64_t o_mat = m * n;
  const int64_t* batch_p = batch_strides.data();
  const int64_t* as_p = a_strides.data();
  const int64_t* bs_p = b_strides.data();
  const int64_t batch_rank = static_cast<int64_t>(batch.size());
  // Parallel over the flattened (batch, row) space so small-m batches and
  // single large matrices both load every worker. Pointers and scalars are
  // captured by value to keep them in registers across output stores.
  runtime::ParallelFor(
      0, batch_count * m, MatMulRowGrain(k, n),
      [=](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1;) {
          const int64_t bi = r / m;
          const int64_t i0 = r % m;
          const int64_t i1 = std::min(m, i0 + (r1 - r));
          int64_t a_off = 0;
          int64_t b_off = 0;
          int64_t rem = bi;
          for (int64_t d = 0; d < batch_rank; ++d) {
            int64_t coord = rem / batch_p[d];
            rem %= batch_p[d];
            a_off += coord * as_p[d];
            b_off += coord * bs_p[d];
          }
          if constexpr (simd::kEnabled) {
            simd::GemmRowsNN(pa + a_off * a_mat, pb + b_off * b_mat,
                             po + bi * o_mat, i0, i1, k, n);
          } else {
            MatMulRowRange(pa + a_off * a_mat, pb + b_off * b_mat,
                           po + bi * o_mat, i0, i1, k, n);
          }
          r += i1 - i0;
        }
      });
  return out;
}

Tensor MatMulNT(const Tensor& a, const Tensor& b) {
  STWA_CHECK(a.rank() >= 2 && b.rank() >= 2,
             "MatMulNT needs rank >= 2 inputs");
  const int64_t m = a.dim(-2);
  const int64_t k = a.dim(-1);
  const int64_t n = b.dim(-2);
  STWA_CHECK(b.dim(-1) == k, "inner dimensions mismatch: ",
             ShapeToString(a.shape()), " x ", ShapeToString(b.shape()),
             "^T");
  // Reduced-precision hook for a registered [n, k] weight operand. A
  // shared rank-2 B lets the batch flatten into one [batch*m, k] GEMM,
  // same as MatMul's flatten.
  if (b.rank() == 2) {
    if (const auto pack = lowp::Find(b.data(), k, n, /*trans=*/true)) {
      Shape out_shape(a.shape().begin(), a.shape().end() - 2);
      out_shape.push_back(m);
      out_shape.push_back(n);
      Tensor out = Tensor::Uninit(out_shape);
      simd::GemmLowp(a.data(), *pack, out.data(), out.size() / std::max<int64_t>(1, n),
                     /*trans_a=*/false);
      return out;
    }
  }
  if constexpr (simd::kEnabled) {
    if (a.rank() == 2 && b.rank() == 2 && simd::GemmUsesPackedPath(m, n, k)) {
      Tensor out = Tensor::Uninit(Shape{m, n});
      simd::Gemm2D(a.data(), b.data(), out.data(), m, n, k,
                   /*trans_a=*/false, /*trans_b=*/true);
      return out;
    }
  }
  return BatchedTransposedProduct(
      a, b, m, n, k,
      [k, n](const float* pa, const float* pb, float* po, int64_t i0,
             int64_t i1) {
        if constexpr (simd::kEnabled) {
          simd::GemmRowsNT(pa, pb, po, i0, i1, k, n);
        } else {
          MatMulNTRowRange(pa, pb, po, i0, i1, k, n);
        }
      });
}

Tensor MatMulTN(const Tensor& a, const Tensor& b) {
  STWA_CHECK(a.rank() >= 2 && b.rank() >= 2,
             "MatMulTN needs rank >= 2 inputs");
  const int64_t k = a.dim(-2);
  const int64_t m = a.dim(-1);
  const int64_t n = b.dim(-1);
  STWA_CHECK(b.dim(-2) == k, "inner dimensions mismatch: ",
             ShapeToString(a.shape()), "^T x ", ShapeToString(b.shape()));
  // Reduced-precision hook: op(B) is B's natural [k, n] layout here, so a
  // registered NN pack serves TN too; only op(A) differs.
  if (a.rank() == 2 && b.rank() == 2) {
    if (const auto pack = lowp::Find(b.data(), k, n, /*trans=*/false)) {
      Tensor out = Tensor::Uninit(Shape{m, n});
      simd::GemmLowp(a.data(), *pack, out.data(), m, /*trans_a=*/true);
      return out;
    }
  }
  if constexpr (simd::kEnabled) {
    if (a.rank() == 2 && b.rank() == 2 && simd::GemmUsesPackedPath(m, n, k)) {
      Tensor out = Tensor::Uninit(Shape{m, n});
      simd::Gemm2D(a.data(), b.data(), out.data(), m, n, k,
                   /*trans_a=*/true, /*trans_b=*/false);
      return out;
    }
  }
  return BatchedTransposedProduct(
      a, b, m, n, k,
      [k, m, n](const float* pa, const float* pb, float* po, int64_t i0,
                int64_t i1) {
        if constexpr (simd::kEnabled) {
          simd::GemmRowsTN(pa, pb, po, i0, i1, k, m, n);
        } else {
          MatMulTNRowRange(pa, pb, po, i0, i1, k, m, n);
        }
      });
}

Tensor TransposeLast2(const Tensor& a) {
  STWA_CHECK(a.rank() >= 2, "TransposeLast2 needs rank >= 2");
  std::vector<int64_t> axes(a.rank());
  for (int64_t d = 0; d < a.rank(); ++d) axes[d] = d;
  std::swap(axes[a.rank() - 1], axes[a.rank() - 2]);
  return Permute(a, axes);
}

Tensor Permute(const Tensor& a, const std::vector<int64_t>& axes) {
  const int64_t rank = a.rank();
  STWA_CHECK(static_cast<int64_t>(axes.size()) == rank,
             "Permute axes rank mismatch");
  std::vector<bool> seen(rank, false);
  Shape out_shape(rank);
  for (int64_t d = 0; d < rank; ++d) {
    STWA_CHECK(axes[d] >= 0 && axes[d] < rank && !seen[axes[d]],
               "invalid permutation");
    seen[axes[d]] = true;
    out_shape[d] = a.shape()[axes[d]];
  }
  Tensor out = Tensor::Uninit(out_shape);
  if (a.size() == 0) return out;
  std::vector<int64_t> in_strides = Strides(a.shape());
  // stride in the input for each output axis
  std::vector<int64_t> strides(rank);
  for (int64_t d = 0; d < rank; ++d) strides[d] = in_strides[axes[d]];
  const float* pa = a.data();
  float* po = out.data();

  // Collapse the trailing output axes that are contiguous in the input
  // into a single run: one memcpy per run replaces the per-element
  // odometer (the dominant cost for the [0,2,1,3]-style permutes window
  // attention performs on every head).
  int64_t run = 1;
  int64_t outer = rank;
  while (outer > 0 && strides[outer - 1] == run) {
    run *= out_shape[outer - 1];
    --outer;
  }
  if (outer == 0) {  // input already laid out in output order
    std::copy(pa, pa + a.size(), po);
    return out;
  }
  // Without a contiguous tail, runs still cover the last axis with a
  // fixed stride — a strided gather loop, but no odometer per element.
  const int64_t inner = run > 1 ? run : out_shape[rank - 1];
  const int64_t inner_stride = run > 1 ? 1 : strides[rank - 1];
  if (run == 1) outer = rank - 1;
  const int64_t num_runs = a.size() / inner;
  const int64_t* shape_p = out_shape.data();
  const int64_t* strides_p = strides.data();
  runtime::ParallelFor(
      0, num_runs, std::max<int64_t>(1, kMinChunkWork / inner),
      [=](int64_t r0, int64_t r1) {
        std::vector<int64_t> idx(outer, 0);
        int64_t in_off = 0;
        int64_t rem = r0;
        for (int64_t d = outer - 1; d >= 0; --d) {
          idx[d] = rem % shape_p[d];
          rem /= shape_p[d];
          in_off += idx[d] * strides_p[d];
        }
        for (int64_t r = r0; r < r1; ++r) {
          float* dst = po + r * inner;
          const float* src = pa + in_off;
          if (inner_stride == 1) {
            std::memcpy(dst, src, sizeof(float) * inner);
          } else {
            for (int64_t j = 0; j < inner; ++j) {
              dst[j] = src[j * inner_stride];
            }
          }
          for (int64_t d = outer - 1; d >= 0; --d) {
            ++idx[d];
            in_off += strides_p[d];
            if (idx[d] < shape_p[d]) break;
            in_off -= strides_p[d] * shape_p[d];
            idx[d] = 0;
          }
        }
      });
  return out;
}

Tensor SumAll(const Tensor& a) {
  double acc = 0.0;
  const float* p = a.data();
  for (int64_t i = 0; i < a.size(); ++i) acc += p[i];
  Tensor out(Shape{});
  out.data()[0] = static_cast<float>(acc);
  return out;
}

Tensor MeanAll(const Tensor& a) {
  STWA_CHECK(a.size() > 0, "MeanAll of empty tensor");
  Tensor s = SumAll(a);
  s.data()[0] /= static_cast<float>(a.size());
  return s;
}

Tensor Sum(const Tensor& a, int64_t axis, bool keepdims) {
  axis = NormalizeAxis(axis, a.rank());
  int64_t outer;
  int64_t extent;
  int64_t inner;
  AxisSplit(a.shape(), axis, &outer, &extent, &inner);
  Shape out_shape = a.shape();
  if (keepdims) {
    out_shape[axis] = 1;
  } else {
    out_shape.erase(out_shape.begin() + axis);
  }
  Tensor out(out_shape);
  const float* pa = a.data();
  float* po = out.data();
  // Parallel over `outer` slices: each output element is reduced by one
  // chunk. inner > 1 vectorizes across the inner axis keeping the exact
  // ascending-e per-element order of the serial loop; inner == 1 (last
  // axis) uses fixed lane accumulators over the extent (zero pad lanes
  // are the add identity), deterministic but lane-split, so it differs
  // from the scalar build in low-order bits.
  const bool vec_last = simd::kEnabled && inner == 1 && extent >= kVecW;
  runtime::ParallelFor(
      0, outer, std::max<int64_t>(1, kMinChunkWork / (extent * inner + 1)),
      [=](int64_t o0, int64_t o1) {
        for (int64_t o = o0; o < o1; ++o) {
          if (vec_last) {
            const float* src = pa + o * extent;
            Vec acc = Vec::Zero();
            int64_t e = 0;
            for (; e + kVecW <= extent; e += kVecW) {
              acc = acc + Vec::Load(src + e);
            }
            if (e < extent) {
              acc = acc + simd::LoadPartial(src + e, extent - e);
            }
            po[o] = simd::ReduceAdd(acc);
            continue;
          }
          for (int64_t e = 0; e < extent; ++e) {
            const float* src = pa + (o * extent + e) * inner;
            float* dst = po + o * inner;
            if constexpr (simd::kEnabled) {
              if (inner > 1) {
                detail::VecBinaryRange(dst, dst, src, 0, inner,
                                       simd::AddOp{});
                continue;
              }
            }
            for (int64_t i = 0; i < inner; ++i) dst[i] += src[i];
          }
        }
      });
  return out;
}

Tensor Mean(const Tensor& a, int64_t axis, bool keepdims) {
  axis = NormalizeAxis(axis, a.rank());
  Tensor s = Sum(a, axis, keepdims);
  const float inv = 1.0f / static_cast<float>(a.shape()[axis]);
  float* p = s.data();
  for (int64_t i = 0; i < s.size(); ++i) p[i] *= inv;
  return s;
}

Tensor Max(const Tensor& a, int64_t axis, bool keepdims) {
  axis = NormalizeAxis(axis, a.rank());
  int64_t outer;
  int64_t extent;
  int64_t inner;
  AxisSplit(a.shape(), axis, &outer, &extent, &inner);
  STWA_CHECK(extent > 0, "Max over empty axis");
  Shape out_shape = a.shape();
  if (keepdims) {
    out_shape[axis] = 1;
  } else {
    out_shape.erase(out_shape.begin() + axis);
  }
  Tensor out(out_shape, -std::numeric_limits<float>::infinity());
  const float* pa = a.data();
  float* po = out.data();
  // Same split as Sum: vector-across-inner keeps the serial per-element
  // order (max is exact either way); last-axis rows use lane maxima with
  // -inf pad lanes.
  const bool vec_last = simd::kEnabled && inner == 1 && extent >= kVecW;
  runtime::ParallelFor(
      0, outer, std::max<int64_t>(1, kMinChunkWork / (extent * inner + 1)),
      [=](int64_t o0, int64_t o1) {
        for (int64_t o = o0; o < o1; ++o) {
          if (vec_last) {
            const float* src = pa + o * extent;
            Vec acc = Vec::Broadcast(-std::numeric_limits<float>::infinity());
            int64_t e = 0;
            for (; e + kVecW <= extent; e += kVecW) {
              acc = Vec::Max(acc, Vec::Load(src + e));
            }
            if (e < extent) {
              acc = Vec::Max(
                  acc, simd::LoadPartial(
                           src + e, extent - e,
                           -std::numeric_limits<float>::infinity()));
            }
            po[o] = simd::ReduceMax(acc);
            continue;
          }
          for (int64_t e = 0; e < extent; ++e) {
            const float* src = pa + (o * extent + e) * inner;
            float* dst = po + o * inner;
            if constexpr (simd::kEnabled) {
              if (inner > 1) {
                detail::VecBinaryRange(dst, dst, src, 0, inner,
                                       simd::MaxOp{});
                continue;
              }
            }
            for (int64_t i = 0; i < inner; ++i) {
              dst[i] = std::max(dst[i], src[i]);
            }
          }
        }
      });
  return out;
}

Tensor ArgMaxLast(const Tensor& a) {
  STWA_CHECK(a.rank() >= 1, "ArgMaxLast needs rank >= 1");
  const int64_t last = a.dim(-1);
  STWA_CHECK(last > 0, "ArgMaxLast over empty axis");
  const int64_t rows = a.size() / last;
  Shape out_shape(a.shape().begin(), a.shape().end() - 1);
  Tensor out = Tensor::Uninit(out_shape);
  const float* pa = a.data();
  float* po = out.data();
  for (int64_t r = 0; r < rows; ++r) {
    const float* row = pa + r * last;
    int64_t best = 0;
    for (int64_t j = 1; j < last; ++j) {
      if (row[j] > row[best]) best = j;
    }
    po[r] = static_cast<float>(best);
  }
  return out;
}

Tensor ReduceToShape(const Tensor& grad, const Shape& shape) {
  if (grad.shape() == shape) return grad;
  // Align target shape to grad rank with leading 1s, sum where target is 1
  // or missing, then reshape to the target.
  const int64_t grank = grad.rank();
  const int64_t trank = static_cast<int64_t>(shape.size());
  Tensor cur = grad;
  // Sum away extra leading axes.
  for (int64_t d = 0; d < grank - trank; ++d) cur = Sum(cur, 0, false);
  // Sum broadcast (extent-1) axes, keeping dims.
  for (int64_t d = 0; d < trank; ++d) {
    if (shape[d] == 1 && cur.shape()[d] != 1) {
      cur = Sum(cur, d, /*keepdims=*/true);
    } else {
      STWA_CHECK(shape[d] == cur.shape()[d], "ReduceToShape mismatch: ",
                 ShapeToString(grad.shape()), " -> ", ShapeToString(shape));
    }
  }
  return cur.Reshape(shape);
}

Tensor BroadcastTo(const Tensor& a, const Shape& shape) {
  if (a.shape() == shape) return a;
  STWA_CHECK(BroadcastShapes(a.shape(), shape) == shape,
             "cannot broadcast ", ShapeToString(a.shape()), " to ",
             ShapeToString(shape));
  Tensor out = Tensor::Uninit(shape);
  if (out.size() == 0) return out;
  std::vector<int64_t> a_strides = BroadcastStrides(a.shape(), shape);
  const std::vector<int64_t> zero(shape.size(), 0);
  const float* pa = a.data();
  float* po = out.data();
  ForEachBroadcastRuns(
      shape, a_strides, zero,
      [po, pa](int64_t o, int64_t a0, int64_t, int64_t len, int64_t sa,
               int64_t) {
        if (sa == 1) {
          std::memcpy(po + o, pa + a0, sizeof(float) * len);
        } else if (sa == 0) {
          std::fill(po + o, po + o + len, pa[a0]);
        } else {
          for (int64_t j = 0; j < len; ++j) po[o + j] = pa[a0 + j * sa];
        }
      });
  return out;
}

// Per-row softmax body shared by SoftmaxLast and FusedAttention: rows are
// independent, so a range [r0, r1) computes the same bits regardless of
// which caller (or worker) runs it. In-place safe (src == dst): every
// element is read before its slot is overwritten. `vec_rows` must be the
// shape-only decision `simd::kEnabled && last >= kVecW`.
static void SoftmaxRowRange(const float* pa, float* po, int64_t r0,
                            int64_t r1, int64_t last, bool vec_rows) {
  for (int64_t r = r0; r < r1; ++r) {
    const float* src = pa + r * last;
    float* dst = po + r * last;
    if (vec_rows) {
      // Row max: -inf pad lanes are the max identity.
      Vec vmax = Vec::Broadcast(-std::numeric_limits<float>::infinity());
      int64_t j = 0;
      for (; j + kVecW <= last; j += kVecW) {
        vmax = Vec::Max(vmax, Vec::Load(src + j));
      }
      if (j < last) {
        vmax = Vec::Max(
            vmax, simd::LoadPartial(
                      src + j, last - j,
                      -std::numeric_limits<float>::infinity()));
      }
      const float mx = simd::ReduceMax(vmax);
      // exp and the row sum in one sweep; tail pad lanes hold
      // exp(0 - mx) garbage, so they are masked to the add
      // identity before accumulating (and never stored).
      const Vec vmx = Vec::Broadcast(mx);
      Vec vsum = Vec::Zero();
      j = 0;
      for (; j + kVecW <= last; j += kVecW) {
        const Vec e = simd::ExpV(Vec::Load(src + j) - vmx);
        e.Store(dst + j);
        vsum = vsum + e;
      }
      if (j < last) {
        const int64_t rem = last - j;
        const Vec e = simd::ExpV(simd::LoadPartial(src + j, rem) - vmx);
        simd::StorePartial(e, dst + j, rem);
        vsum = vsum + simd::MaskFirstN(e, rem);
      }
      const Vec vinv = Vec::Broadcast(1.0f / simd::ReduceAdd(vsum));
      j = 0;
      for (; j + kVecW <= last; j += kVecW) {
        (Vec::Load(dst + j) * vinv).Store(dst + j);
      }
      if (j < last) {
        simd::StorePartial(simd::LoadPartial(dst + j, last - j) * vinv,
                           dst + j, last - j);
      }
    } else {
      float mx = src[0];
      for (int64_t j = 1; j < last; ++j) mx = std::max(mx, src[j]);
      float sum = 0.0f;
      for (int64_t j = 0; j < last; ++j) {
        dst[j] = std::exp(src[j] - mx);
        sum += dst[j];
      }
      const float inv = 1.0f / sum;
      for (int64_t j = 0; j < last; ++j) dst[j] *= inv;
    }
  }
}

Tensor SoftmaxLast(const Tensor& a) {
  STWA_CHECK(a.rank() >= 1, "SoftmaxLast needs rank >= 1");
  const int64_t last = a.dim(-1);
  STWA_CHECK(last > 0, "SoftmaxLast over empty axis");
  const int64_t rows = a.size() / last;
  Tensor out = Tensor::Uninit(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  // Vector path only when a row holds at least one full vector: window
  // attention softmaxes rows of 2-3 where the scalar loop wins. The choice
  // depends only on the shape, so it is deterministic.
  const bool vec_rows = simd::kEnabled && last >= kVecW;
  runtime::ParallelFor(
      0, rows, std::max<int64_t>(1, kMinChunkWork / (4 * last)),
      [=](int64_t r0, int64_t r1) {
        SoftmaxRowRange(pa, po, r0, r1, last, vec_rows);
      });
  return out;
}

Tensor SoftmaxLastBackward(const Tensor& y, const Tensor& g) {
  STWA_CHECK(y.shape() == g.shape(), "SoftmaxLastBackward shape mismatch: ",
             ShapeToString(y.shape()), " vs ", ShapeToString(g.shape()));
  STWA_CHECK(y.rank() >= 1, "SoftmaxLastBackward needs rank >= 1");
  const int64_t last = y.dim(-1);
  STWA_CHECK(last > 0, "SoftmaxLastBackward over empty axis");
  const int64_t rows = y.size() / last;
  Tensor out = Tensor::Uninit(y.shape());
  const float* py = y.data();
  const float* pg = g.data();
  float* po = out.data();
  // Scalar path: row-serial accumulation in ascending j order,
  // bit-identical to the unfused Mul/Sum/Sub/Mul composition it replaces.
  // Vector path (rows of at least one full vector): fixed lane
  // accumulators for s — zero pad lanes contribute fma(0, 0, acc) == acc
  // exactly, so the ragged tail needs no mask.
  const bool vec_rows = simd::kEnabled && last >= kVecW;
  runtime::ParallelFor(
      0, rows, std::max<int64_t>(1, kMinChunkWork / (4 * last)),
      [=](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
          const float* yr = py + r * last;
          const float* gr = pg + r * last;
          float* dst = po + r * last;
          if (vec_rows) {
            Vec vs = Vec::Zero();
            int64_t j = 0;
            for (; j + kVecW <= last; j += kVecW) {
              vs = Vec::Fma(Vec::Load(gr + j), Vec::Load(yr + j), vs);
            }
            if (j < last) {
              const int64_t rem = last - j;
              vs = Vec::Fma(simd::LoadPartial(gr + j, rem),
                            simd::LoadPartial(yr + j, rem), vs);
            }
            const Vec s = Vec::Broadcast(simd::ReduceAdd(vs));
            j = 0;
            for (; j + kVecW <= last; j += kVecW) {
              (Vec::Load(yr + j) * (Vec::Load(gr + j) - s)).Store(dst + j);
            }
            if (j < last) {
              const int64_t rem = last - j;
              simd::StorePartial(simd::LoadPartial(yr + j, rem) *
                                     (simd::LoadPartial(gr + j, rem) - s),
                                 dst + j, rem);
            }
          } else {
            float s = 0.0f;
            for (int64_t j = 0; j < last; ++j) s += gr[j] * yr[j];
            for (int64_t j = 0; j < last; ++j) dst[j] = yr[j] * (gr[j] - s);
          }
        }
      });
  return out;
}

Tensor Concat(const std::vector<Tensor>& parts, int64_t axis) {
  STWA_CHECK(!parts.empty(), "Concat of zero tensors");
  const int64_t rank = parts[0].rank();
  axis = NormalizeAxis(axis, rank);
  Shape out_shape = parts[0].shape();
  int64_t total_axis = 0;
  for (const Tensor& t : parts) {
    STWA_CHECK(t.rank() == rank, "Concat rank mismatch");
    for (int64_t d = 0; d < rank; ++d) {
      if (d != axis) {
        STWA_CHECK(t.shape()[d] == out_shape[d],
                   "Concat shape mismatch on dim ", d);
      }
    }
    total_axis += t.shape()[axis];
  }
  out_shape[axis] = total_axis;
  Tensor out = Tensor::Uninit(out_shape);
  int64_t outer;
  int64_t extent;
  int64_t inner;
  AxisSplit(out_shape, axis, &outer, &extent, &inner);
  float* po = out.data();
  int64_t axis_offset = 0;
  for (const Tensor& t : parts) {
    const int64_t t_extent = t.shape()[axis];
    const float* pt = t.data();
    for (int64_t o = 0; o < outer; ++o) {
      std::memcpy(po + (o * extent + axis_offset) * inner,
                  pt + o * t_extent * inner,
                  sizeof(float) * t_extent * inner);
    }
    axis_offset += t_extent;
  }
  return out;
}

Tensor Slice(const Tensor& a, int64_t axis, int64_t start, int64_t len) {
  axis = NormalizeAxis(axis, a.rank());
  STWA_CHECK(start >= 0 && len >= 0 && start + len <= a.shape()[axis],
             "Slice range [", start, ", ", start + len,
             ") out of bounds for extent ", a.shape()[axis]);
  int64_t outer;
  int64_t extent;
  int64_t inner;
  AxisSplit(a.shape(), axis, &outer, &extent, &inner);
  Shape out_shape = a.shape();
  out_shape[axis] = len;
  Tensor out = Tensor::Uninit(out_shape);
  const float* pa = a.data();
  float* po = out.data();
  for (int64_t o = 0; o < outer; ++o) {
    std::memcpy(po + o * len * inner, pa + (o * extent + start) * inner,
                sizeof(float) * len * inner);
  }
  return out;
}

Tensor Stack(const std::vector<Tensor>& parts) {
  STWA_CHECK(!parts.empty(), "Stack of zero tensors");
  for (const Tensor& t : parts) {
    STWA_CHECK(t.shape() == parts[0].shape(), "Stack shape mismatch");
  }
  Shape out_shape = parts[0].shape();
  out_shape.insert(out_shape.begin(),
                   static_cast<int64_t>(parts.size()));
  Tensor out = Tensor::Uninit(out_shape);
  float* po = out.data();
  const int64_t each = parts[0].size();
  for (size_t i = 0; i < parts.size(); ++i) {
    std::memcpy(po + i * each, parts[i].data(), sizeof(float) * each);
  }
  return out;
}

Tensor IndexSelect0(const Tensor& a, const std::vector<int64_t>& indices) {
  STWA_CHECK(a.rank() >= 1, "IndexSelect0 needs rank >= 1");
  const int64_t rows = a.dim(0);
  const int64_t row_size = rows == 0 ? 0 : a.size() / rows;
  Shape out_shape = a.shape();
  out_shape[0] = static_cast<int64_t>(indices.size());
  Tensor out = Tensor::Uninit(out_shape);
  const float* pa = a.data();
  float* po = out.data();
  for (size_t i = 0; i < indices.size(); ++i) {
    const int64_t r = indices[i];
    STWA_CHECK(r >= 0 && r < rows, "index ", r, " out of range [0, ", rows,
               ")");
    std::memcpy(po + i * row_size, pa + r * row_size,
                sizeof(float) * row_size);
  }
  return out;
}

void ScatterAddRows(Tensor& dst, const std::vector<int64_t>& indices,
                    const Tensor& src) {
  STWA_CHECK(dst.rank() >= 1 && src.rank() >= 1, "rank >= 1 required");
  const int64_t rows = dst.dim(0);
  const int64_t row_size = rows == 0 ? 0 : dst.size() / rows;
  STWA_CHECK(src.dim(0) == static_cast<int64_t>(indices.size()),
             "ScatterAddRows row count mismatch");
  STWA_CHECK(src.size() == row_size * src.dim(0),
             "ScatterAddRows row size mismatch");
  const float* ps = src.data();
  float* pd = dst.data();
  for (size_t i = 0; i < indices.size(); ++i) {
    const int64_t r = indices[i];
    STWA_CHECK(r >= 0 && r < rows, "index ", r, " out of range");
    const float* srow = ps + i * row_size;
    float* drow = pd + r * row_size;
    for (int64_t j = 0; j < row_size; ++j) drow[j] += srow[j];
  }
}

void AddInPlace(Tensor& dst, const Tensor& src) {
  STWA_CHECK(dst.shape() == src.shape(), "AddInPlace shape mismatch: ",
             ShapeToString(dst.shape()), " vs ", ShapeToString(src.shape()));
  float* pd = dst.data();
  const float* ps = src.data();
  runtime::ParallelFor(0, dst.size(), kMinChunkWork,
                       [pd, ps](int64_t begin, int64_t end) {
                         if constexpr (simd::kEnabled) {
                           detail::VecBinaryRange(pd, pd, ps, begin, end,
                                                  simd::AddOp{});
                         } else {
                           for (int64_t i = begin; i < end; ++i) {
                             pd[i] += ps[i];
                           }
                         }
                       });
}

void AxpyInPlace(Tensor& dst, float s, const Tensor& src) {
  STWA_CHECK(dst.shape() == src.shape(), "AxpyInPlace shape mismatch");
  float* pd = dst.data();
  const float* ps = src.data();
  runtime::ParallelFor(
      0, dst.size(), kMinChunkWork, [pd, ps, s](int64_t begin, int64_t end) {
        if constexpr (simd::kEnabled) {
          const Vec vs = Vec::Broadcast(s);
          int64_t i = begin;
          for (; i + kVecW <= end; i += kVecW) {
            Vec::Fma(vs, Vec::Load(ps + i), Vec::Load(pd + i)).Store(pd + i);
          }
          if (i < end) {
            const int64_t rem = end - i;
            simd::StorePartial(Vec::Fma(vs, simd::LoadPartial(ps + i, rem),
                                        simd::LoadPartial(pd + i, rem)),
                               pd + i, rem);
          }
        } else {
          for (int64_t i = begin; i < end; ++i) {
            pd[i] += s * ps[i];
          }
        }
      });
}

void MulInPlace(Tensor& dst, const Tensor& src) {
  STWA_CHECK(dst.shape() == src.shape(), "MulInPlace shape mismatch: ",
             ShapeToString(dst.shape()), " vs ", ShapeToString(src.shape()));
  float* pd = dst.data();
  const float* ps = src.data();
  runtime::ParallelFor(0, dst.size(), kMinChunkWork,
                       [pd, ps](int64_t begin, int64_t end) {
                         if constexpr (simd::kEnabled) {
                           detail::VecBinaryRange(pd, pd, ps, begin, end,
                                                  simd::MulOp{});
                         } else {
                           for (int64_t i = begin; i < end; ++i) {
                             pd[i] *= ps[i];
                           }
                         }
                       });
}

void MulScalarInPlace(Tensor& dst, float s) {
  float* pd = dst.data();
  runtime::ParallelFor(0, dst.size(), kMinChunkWork,
                       [pd, s](int64_t begin, int64_t end) {
                         if constexpr (simd::kEnabled) {
                           detail::VecUnaryRange(pd, pd, begin, end,
                                                 simd::MulScalarOp{s});
                         } else {
                           for (int64_t i = begin; i < end; ++i) {
                             pd[i] *= s;
                           }
                         }
                       });
}

void AddMulInPlace(Tensor& dst, const Tensor& a, const Tensor& b) {
  STWA_CHECK(dst.shape() == a.shape() && dst.shape() == b.shape(),
             "AddMulInPlace shape mismatch: ", ShapeToString(dst.shape()),
             " vs ", ShapeToString(a.shape()), " vs ",
             ShapeToString(b.shape()));
  float* pd = dst.data();
  const float* pa = a.data();
  const float* pb = b.data();
  runtime::ParallelFor(
      0, dst.size(), kMinChunkWork, [pd, pa, pb](int64_t begin, int64_t end) {
        if constexpr (simd::kEnabled) {
          int64_t i = begin;
          for (; i + kVecW <= end; i += kVecW) {
            Vec::Fma(Vec::Load(pa + i), Vec::Load(pb + i), Vec::Load(pd + i))
                .Store(pd + i);
          }
          if (i < end) {
            const int64_t rem = end - i;
            simd::StorePartial(Vec::Fma(simd::LoadPartial(pa + i, rem),
                                        simd::LoadPartial(pb + i, rem),
                                        simd::LoadPartial(pd + i, rem)),
                               pd + i, rem);
          }
        } else {
          for (int64_t i = begin; i < end; ++i) {
            pd[i] += pa[i] * pb[i];
          }
        }
      });
}

float MaxAbsDiff(const Tensor& a, const Tensor& b) {
  STWA_CHECK(a.shape() == b.shape(), "MaxAbsDiff shape mismatch");
  float mx = 0.0f;
  const float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a.size(); ++i) {
    mx = std::max(mx, std::fabs(pa[i] - pb[i]));
  }
  return mx;
}

bool AllClose(const Tensor& a, const Tensor& b, float rtol, float atol) {
  if (a.shape() != b.shape()) return false;
  const float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a.size(); ++i) {
    if (std::fabs(pa[i] - pb[i]) > atol + rtol * std::fabs(pb[i])) {
      return false;
    }
  }
  return true;
}

// --- Fused kernels (plan-rewrite targets; see tensor/fused_ops.h) --------

namespace {

/// Decoded stage of a fused chain, with the side pointer resolved.
struct FusedStageRT {
  simd::FusedOp op;
  const float* side = nullptr;  // null for unary/scalar stages
  float scalar = 0.0f;
  bool swapped = false;
  bool side_full = false;  // full-shape side (false: broadcast run)
};

/// True when `side` is `out` or a non-empty exact suffix of it (the
/// rewriter's SideFusible contract).
bool FusedSideShapeOk(const Shape& side, const Shape& out) {
  if (side == out) return true;
  if (side.empty() || side.size() >= out.size()) return false;
  const size_t off = out.size() - side.size();
  for (size_t i = 0; i < side.size(); ++i) {
    if (side[i] != out[i + off]) return false;
  }
  return true;
}

}  // namespace

Tensor FusedMap(const Tensor& head, const std::vector<Tensor>& sides,
                const std::vector<int64_t>& program,
                const std::vector<float>& scalars) {
  STWA_CHECK(program.size() % 3 == 0, "FusedMap program not triples: ",
             program.size());
  const size_t n_stages = program.size() / 3;
  STWA_CHECK(scalars.size() == n_stages, "FusedMap scalar count ",
             scalars.size(), " != stage count ", n_stages);
  // Sides are either full-shape or one common exact-suffix "run" (the bias
  // pattern); the rewriter guarantees a single run length per chain.
  int64_t run = head.size();
  for (const Tensor& s : sides) {
    STWA_CHECK(FusedSideShapeOk(s.shape(), head.shape()),
               "FusedMap side shape ", ShapeToString(s.shape()),
               " is neither the head shape ", ShapeToString(head.shape()),
               " nor a suffix of it");
    if (s.size() != head.size()) {
      STWA_CHECK(run == head.size() || run == s.size(),
                 "FusedMap broadcast sides disagree on run length: ", run,
                 " vs ", s.size());
      run = s.size();
    }
  }
  std::vector<FusedStageRT> stages(n_stages);
  for (size_t s = 0; s < n_stages; ++s) {
    const auto op = static_cast<simd::FusedOp>(program[3 * s]);
    const int64_t slot = program[3 * s + 1];
    STWA_CHECK(static_cast<int64_t>(op) >= 0 &&
                   op < simd::FusedOp::kCount,
               "FusedMap bad opcode ", program[3 * s]);
    if (simd::FusedOpIsBinary(op)) {
      STWA_CHECK(slot >= 0 && slot < static_cast<int64_t>(sides.size()),
                 "FusedMap side slot ", slot, " out of range");
      stages[s].side = sides[slot].data();
      stages[s].side_full = sides[slot].size() == head.size();
    } else {
      STWA_CHECK(slot < 0, "FusedMap unary stage with a side slot");
    }
    stages[s].op = op;
    stages[s].scalar = scalars[s];
    stages[s].swapped = program[3 * s + 2] != 0;
  }

  Tensor out = Tensor::Uninit(head.shape());
  const int64_t size = head.size();
  if (size == 0) return out;
  const float* ph = head.data();
  float* po = out.data();
  const FusedStageRT* st = stages.data();
  const int64_t count = static_cast<int64_t>(n_stages);
  // Each chunk does `count` op-equivalents per element; keep the
  // per-chunk work near the shared floor.
  if (run == size) {
    const int64_t grain =
        std::max<int64_t>(1, kMinChunkWork / std::max<int64_t>(1, count));
    runtime::ParallelFor(
        0, size, grain, [=](int64_t begin, int64_t end) {
          if constexpr (simd::kEnabled) {
            int64_t i = begin;
            for (; i + kVecW <= end; i += kVecW) {
              Vec x = Vec::Load(ph + i);
              for (int64_t s = 0; s < count; ++s) {
                const Vec side = st[s].side != nullptr
                                     ? Vec::Load(st[s].side + i)
                                     : Vec::Zero();
                x = simd::FusedApply(st[s].op, x, side, st[s].scalar,
                                     st[s].swapped);
              }
              x.Store(po + i);
            }
            if (i < end) {
              const int64_t rem = end - i;
              Vec x = simd::LoadPartial(ph + i, rem);
              for (int64_t s = 0; s < count; ++s) {
                const Vec side = st[s].side != nullptr
                                     ? simd::LoadPartial(st[s].side + i, rem)
                                     : Vec::Zero();
                x = simd::FusedApply(st[s].op, x, side, st[s].scalar,
                                     st[s].swapped);
              }
              simd::StorePartial(x, po + i, rem);
            }
          } else {
            for (int64_t i = begin; i < end; ++i) {
              float x = ph[i];
              for (int64_t s = 0; s < count; ++s) {
                const float side =
                    st[s].side != nullptr ? st[s].side[i] : 0.0f;
                x = simd::FusedApply(st[s].op, x, side, st[s].scalar,
                                     st[s].swapped);
              }
              po[i] = x;
            }
          }
        });
    return out;
  }

  // Broadcast path: rows of length `run`; full-shape sides stream with the
  // head while suffix sides restart at every row. Lane grouping differs
  // from the flat path only in where vector blocks fall — every op is
  // lane-independent, so per-element results match the eager broadcast.
  const int64_t rows = size / run;
  const int64_t row_grain = std::max<int64_t>(
      1, kMinChunkWork / std::max<int64_t>(1, count * run));
  runtime::ParallelFor(0, rows, row_grain, [=](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const int64_t base = r * run;
      if constexpr (simd::kEnabled) {
        int64_t j = 0;
        for (; j + kVecW <= run; j += kVecW) {
          Vec x = Vec::Load(ph + base + j);
          for (int64_t s = 0; s < count; ++s) {
            const Vec side =
                st[s].side != nullptr
                    ? Vec::Load(st[s].side + (st[s].side_full ? base : 0) + j)
                    : Vec::Zero();
            x = simd::FusedApply(st[s].op, x, side, st[s].scalar,
                                 st[s].swapped);
          }
          x.Store(po + base + j);
        }
        if (j < run) {
          const int64_t rem = run - j;
          Vec x = simd::LoadPartial(ph + base + j, rem);
          for (int64_t s = 0; s < count; ++s) {
            const Vec side =
                st[s].side != nullptr
                    ? simd::LoadPartial(
                          st[s].side + (st[s].side_full ? base : 0) + j, rem)
                    : Vec::Zero();
            x = simd::FusedApply(st[s].op, x, side, st[s].scalar,
                                 st[s].swapped);
          }
          simd::StorePartial(x, po + base + j, rem);
        }
      } else {
        for (int64_t j = 0; j < run; ++j) {
          float x = ph[base + j];
          for (int64_t s = 0; s < count; ++s) {
            const float side =
                st[s].side != nullptr
                    ? st[s].side[(st[s].side_full ? base : 0) + j]
                    : 0.0f;
            x = simd::FusedApply(st[s].op, x, side, st[s].scalar,
                                 st[s].swapped);
          }
          po[base + j] = x;
        }
      }
    }
  });
  return out;
}

Tensor FusedAttention(const Tensor& q, const Tensor& kt, const Tensor& v,
                      float scale) {
  const int64_t rank = q.rank();
  STWA_CHECK(rank >= 2 && kt.rank() == rank && v.rank() == rank,
             "FusedAttention rank mismatch: ", ShapeToString(q.shape()),
             " / ", ShapeToString(kt.shape()), " / ",
             ShapeToString(v.shape()));
  const int64_t m = q.dim(-2);
  const int64_t k = q.dim(-1);
  const int64_t n = kt.dim(-1);
  const int64_t d = v.dim(-1);
  STWA_CHECK(kt.dim(-2) == k && v.dim(-2) == n,
             "FusedAttention inner dims mismatch: ",
             ShapeToString(q.shape()), " / ", ShapeToString(kt.shape()),
             " / ", ShapeToString(v.shape()));
  Shape batch(q.shape().begin(), q.shape().end() - 2);
  STWA_CHECK(Shape(kt.shape().begin(), kt.shape().end() - 2) == batch &&
                 Shape(v.shape().begin(), v.shape().end() - 2) == batch,
             "FusedAttention batch dims must be equal (the rewriter only "
             "fuses such quads)");
  const int64_t batch_count = NumElements(batch);
  Shape out_shape = batch;
  out_shape.push_back(m);
  out_shape.push_back(d);
  // The SIMD NN row kernel writes every element; the legacy row kernel
  // accumulates into zeros — identical to the unfused batched MatMul.
  Tensor out =
      simd::kEnabled ? Tensor::Uninit(out_shape) : Tensor(out_shape);
  if (out.size() == 0) return out;

  const float* pq = q.data();
  const float* pk = kt.data();
  const float* pv = v.data();
  float* po = out.data();
  const int64_t q_mat = m * k;
  const int64_t k_mat = k * n;
  const int64_t v_mat = n * d;
  const int64_t o_mat = m * d;
  // Same shape-only row decision as the standalone SoftmaxLast.
  const bool vec_rows = simd::kEnabled && n >= kVecW;
  // One slice = both GEMMs + scale + softmax worth of work.
  const int64_t slice_work =
      std::max<int64_t>(1, m * n * (k + d + 4));
  const int64_t grain = std::max<int64_t>(1, kMinChunkWork / slice_work);
  runtime::ParallelFor(
      0, batch_count, grain, [=](int64_t b0, int64_t b1) {
        // Per-chunk pooled score scratch, recycled across the slices of
        // the chunk. The full [batch, m, n] score tensor never exists.
        Tensor scores = simd::kEnabled ? Tensor::Uninit(Shape{m, n})
                                       : Tensor(Shape{m, n});
        float* ps = scores.data();
        for (int64_t b = b0; b < b1; ++b) {
          const float* qs = pq + b * q_mat;
          const float* ks = pk + b * k_mat;
          const float* vs = pv + b * v_mat;
          float* os = po + b * o_mat;
          if constexpr (simd::kEnabled) {
            simd::GemmRowsNN(qs, ks, ps, 0, m, k, n);
          } else {
            std::fill(ps, ps + m * n, 0.0f);
            MatMulRowRange(qs, ks, ps, 0, m, k, n);
          }
          // Scale in place with the same lane op as the standalone
          // MulScalar map (full vectors + one partial tail).
          const int64_t mn = m * n;
          if constexpr (simd::kEnabled) {
            const simd::MulScalarOp op{scale};
            int64_t i = 0;
            for (; i + kVecW <= mn; i += kVecW) {
              op(Vec::Load(ps + i)).Store(ps + i);
            }
            if (i < mn) {
              const int64_t rem = mn - i;
              simd::StorePartial(op(simd::LoadPartial(ps + i, rem)), ps + i,
                                 rem);
            }
          } else {
            for (int64_t i = 0; i < mn; ++i) ps[i] *= scale;
          }
          SoftmaxRowRange(ps, ps, 0, m, n, vec_rows);
          if constexpr (simd::kEnabled) {
            simd::GemmRowsNN(ps, vs, os, 0, m, n, d);
          } else {
            MatMulRowRange(ps, vs, os, 0, m, n, d);
          }
        }
      });
  return out;
}

}  // namespace ops
}  // namespace stwa
