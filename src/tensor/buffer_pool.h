// Pooled tensor-buffer storage.
//
// Every Tensor buffer is acquired from a process-wide, size-bucketed
// free-list pool. Returning a buffer (when the last shared_ptr reference
// dies) pushes it back onto its bucket's free list instead of freeing it,
// so steady-state training loops recycle the same handful of buffers
// instead of hammering the allocator once per tensor op.
//
// Properties:
//   * thread-safe: one mutex guards the free lists (tensor allocation is
//     main-thread dominated; workers only run kernels over pre-allocated
//     buffers, so contention is negligible);
//   * size-bucketed: requests round up to the next power of two, with a
//     floor of kMinBucketElements, so close-but-unequal sizes share lists;
//   * bounded: at most kMaxPooledBytes (overridable via
//     STWA_POOL_MAX_BYTES) sit idle in free lists; beyond that, returned
//     buffers are freed;
//   * observable: per-process hit/miss/outstanding-byte counters
//     (pool::Stats()) feed the bench allocation columns;
//   * optional: STWA_DISABLE_POOL=1 (or pool::SetEnabled(false)) bypasses
//     recycling entirely for A/B runs — every acquire heap-allocates and
//     every release frees. Training results are bit-identical either way:
//     recycled buffers carry stale bytes, but every kernel writes each
//     output element before it can be read (see DESIGN.md "Memory
//     management").
//
// Determinism: which physical buffer a tensor gets never influences the
// values computed into it, and buffers are acquired/released only from the
// orchestrating thread, so the pool preserves the runtime's bit-determinism
// guarantee at any thread count.

#ifndef STWA_TENSOR_BUFFER_POOL_H_
#define STWA_TENSOR_BUFFER_POOL_H_

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

namespace stwa {
namespace pool {

/// Minimal aligned std allocator: every allocation starts on an
/// `Alignment`-byte boundary (default 64 = one cache line, and a full
/// AVX-512 vector). Tensor buffers use it so SIMD kernels see aligned
/// bases on every bucket — pooled or not — and so buffers never straddle
/// a cache line start. Kernels still issue unaligned load instructions
/// (values cannot depend on alignment), so pool-on/off stays
/// bit-identical; alignment only removes the split-line penalty.
template <typename T, std::size_t Alignment = 64>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) {}

  T* allocate(std::size_t n) {
    // aligned_alloc requires the size to be a multiple of the alignment.
    const std::size_t bytes =
        (n * sizeof(T) + Alignment - 1) / Alignment * Alignment;
    void* p = std::aligned_alloc(Alignment, bytes);
    if (p == nullptr) throw std::bad_alloc();
    return static_cast<T*>(p);
  }
  void deallocate(T* p, std::size_t) noexcept { std::free(p); }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };
  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) {
    return false;
  }
};

/// Backing storage type of every Tensor buffer: a float vector whose data
/// begins on a 64-byte boundary.
using FloatBuffer = std::vector<float, AlignedAllocator<float>>;

/// Snapshot of the pool's counters since process start (or ResetStats).
struct PoolStats {
  /// Total buffer requests routed through Acquire (pooled or not).
  uint64_t requests = 0;
  /// Requests served from a free list (no heap allocation).
  uint64_t hits = 0;
  /// Requests that had to heap-allocate (pool empty for that bucket, pool
  /// disabled, or zero-size request served without allocation).
  uint64_t misses = 0;
  /// Buffers currently checked out to live tensors.
  uint64_t outstanding_buffers = 0;
  /// Bytes currently checked out to live tensors (bucket capacities).
  uint64_t outstanding_bytes = 0;
  /// High-water mark of outstanding_bytes.
  uint64_t peak_outstanding_bytes = 0;
  /// Bytes currently idle in free lists.
  uint64_t pooled_bytes = 0;
};

/// Acquires a buffer with room for at least `n` floats. The vector's size()
/// is >= n (bucket capacity); contents are unspecified — callers must write
/// every element they read. Never returns nullptr; n == 0 yields an empty
/// buffer.
std::shared_ptr<FloatBuffer> Acquire(int64_t n);

/// True when recycling is active (default unless STWA_DISABLE_POOL is set).
bool Enabled();

/// Switches recycling on/off at runtime (used by A/B tests). Outstanding
/// buffers from the previous mode drain correctly either way.
void SetEnabled(bool enabled);

/// Counter snapshot.
PoolStats Stats();

/// Zeroes the request/hit/miss counters and the peak watermark (outstanding
/// and pooled byte gauges are preserved — they track live state).
void ResetStats();

/// Frees every idle buffer in the free lists (outstanding buffers are
/// unaffected and still return to the pool when released).
void Trim();

}  // namespace pool
}  // namespace stwa

#endif  // STWA_TENSOR_BUFFER_POOL_H_
