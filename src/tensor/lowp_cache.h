// Process-wide registry of prepacked reduced-precision GEMM weights,
// keyed by the weight tensor's data pointer.
//
// Serving sessions pack their rank-2 parameters once at open
// (simd::PackWeights) and register them here; tensor/ops.cc's MatMul
// entry points consult the registry on their B operand and dispatch to
// simd::GemmLowp on a hit. A pointer key is what makes the hook work
// under region-parallel plan replay: kernels run on shared pool worker
// threads, so a thread-local "current precision" would never be visible
// there — the operand pointer is, on whatever thread executes the kernel.
//
// Lifetime: a session must Unregister its weights before the model that
// owns them is destroyed. The buffer pool recycles freed allocations, so
// a stale entry could otherwise alias a future tensor at the same
// address. While a weight is registered its pointer is unique.
//
// Cost when unused: Find() bails on one relaxed atomic load while the
// registry is empty, so training and fp32 serving pay no lock traffic.

#ifndef STWA_TENSOR_LOWP_CACHE_H_
#define STWA_TENSOR_LOWP_CACHE_H_

#include <cstdint>
#include <memory>

#include "simd/gemm_lowp.h"

namespace stwa {
namespace lowp {

/// Registers packed panels for the weight buffer at `data`. The pack's
/// own k/n/trans describe the orientation it serves (trans=false: buffer
/// is op(B)=[k,n]; trans=true: buffer is [n,k], the MatMulNT operand).
/// Both orientations of one buffer may be registered. Re-registering an
/// orientation replaces it.
void Register(const float* data,
              std::shared_ptr<const simd::PackedWeights> pack);

/// Drops every pack registered for `data` (both orientations). No-op if
/// none are registered.
void Unregister(const float* data);

/// Looks up a pack for a GEMM whose B operand is the buffer at `data`
/// with logical op(B) = [k, n] (trans per the MatMulNT convention).
/// Returns nullptr on miss or any dimension mismatch — callers fall back
/// to the fp32 path, never fail.
std::shared_ptr<const simd::PackedWeights> Find(const float* data, int64_t k,
                                                int64_t n, bool trans);

/// Number of buffers currently registered (tests / stats).
int64_t ActiveCount();

/// Total bytes held in registered panels (serving footprint accounting).
int64_t TotalPanelBytes();

}  // namespace lowp
}  // namespace stwa

#endif  // STWA_TENSOR_LOWP_CACHE_H_
