#include "baselines/gwn.h"

#include "common/check.h"
#include "tensor/ops.h"

namespace stwa {
namespace baselines {

GraphWaveNet::GraphWaveNet(BaselineConfig config, Rng* rng)
    : config_(config) {
  STWA_CHECK(config_.num_sensors > 0, "GraphWaveNet needs num_sensors");
  Rng& r = rng != nullptr ? *rng : GlobalRng();
  const int64_t d = config_.d_model;
  const int64_t emb = 8;
  embed_ = std::make_unique<nn::Linear>(config_.features, d, true, &r);
  RegisterModule("embed", embed_.get());
  node_emb1_ = RegisterParameter(
      "node_emb1",
      ops::MulScalar(Tensor::Randn({config_.num_sensors, emb}, r), 0.5f));
  node_emb2_ = RegisterParameter(
      "node_emb2",
      ops::MulScalar(Tensor::Randn({config_.num_sensors, emb}, r), 0.5f));
  // Dilated blocks (kernel 2, dilation 1, 2, 4, ...) as long as the
  // receptive field fits in the history.
  int64_t len = config_.history;
  int64_t dilation = 1;
  for (int64_t l = 0; l < config_.num_layers && len - dilation >= 1; ++l) {
    Block b;
    b.filter = std::make_unique<TemporalConv>(d, d, /*taps=*/2, dilation,
                                              &r);
    b.gate = std::make_unique<TemporalConv>(d, d, /*taps=*/2, dilation, &r);
    b.gconv = std::make_unique<nn::Linear>(d, d, true, &r);
    b.skip = std::make_unique<nn::Linear>(d, config_.predictor_hidden, true,
                                          &r);
    RegisterModule("filter" + std::to_string(l), b.filter.get());
    RegisterModule("gate" + std::to_string(l), b.gate.get());
    RegisterModule("gconv" + std::to_string(l), b.gconv.get());
    RegisterModule("skip" + std::to_string(l), b.skip.get());
    blocks_.push_back(std::move(b));
    len -= dilation;
    dilation *= 2;
  }
  STWA_CHECK(!blocks_.empty(), "history too short for GraphWaveNet");
  predictor_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{config_.predictor_hidden,
                           config_.predictor_hidden,
                           config_.horizon * config_.features},
      nn::Activation::kRelu, nn::Activation::kNone, &r);
  RegisterModule("predictor", predictor_.get());
}

Tensor GraphWaveNet::AdaptiveAdjacency() const {
  Tensor scores = ops::Relu(ops::MatMul2D(
      node_emb1_.value(), ops::TransposeLast2(node_emb2_.value())));
  return ops::SoftmaxLast(scores);
}

ag::Var GraphWaveNet::Forward(const Tensor& x, bool /*training*/) {
  STWA_CHECK(x.rank() == 4 && x.dim(1) == config_.num_sensors &&
                 x.dim(2) == config_.history,
             "GraphWaveNet input mismatch: ", ShapeToString(x.shape()));
  const int64_t batch = x.dim(0);
  const int64_t sensors = config_.num_sensors;
  ag::Var h = embed_->Forward(ag::Var(x));  // [B, N, T, d]

  // Adaptive adjacency (differentiable through the node embeddings).
  ag::Var adp = ag::SoftmaxLast(ag::Relu(
      ag::MatMul(node_emb1_, ag::TransposeLast2(node_emb2_))));

  ag::Var skip_sum;
  for (const Block& b : blocks_) {
    ag::Var residual = h;
    ag::Var gated = ag::Mul(ag::Tanh(b.filter->Forward(h)),
                            ag::Sigmoid(b.gate->Forward(h)));
    // Graph convolution per timestamp: fixed supports + adaptive adjacency.
    ag::Var mixed = ag::Permute(gated, {0, 2, 1, 3});  // [B, T', N, d]
    ag::Var agg = ag::MatMul(adp, mixed);
    for (const Tensor& s : config_.supports) {
      agg = ag::Add(agg, GraphMix(s, mixed));
    }
    ag::Var out = ag::Permute(ag::Relu(b.gconv->Forward(agg)),
                              {0, 2, 1, 3});  // [B, N, T', d]
    // Skip from the last timestamp of this block.
    ag::Var last = ag::Reshape(
        ag::Slice(out, 2, out.value().dim(2) - 1, 1),
        {batch, sensors, config_.d_model});
    ag::Var skip = b.skip->Forward(last);
    skip_sum = skip_sum.defined() ? ag::Add(skip_sum, skip) : skip;
    // Residual connection (crop the residual to the new length).
    const int64_t new_len = out.value().dim(2);
    ag::Var res_crop = ag::Slice(residual, 2,
                                 residual.value().dim(2) - new_len, new_len);
    h = ag::Add(out, res_crop);
  }
  ag::Var pred = predictor_->Forward(ag::Relu(skip_sum));
  return ag::Reshape(pred, {batch, sensors, config_.horizon,
                            config_.features});
}

}  // namespace baselines
}  // namespace stwa
