// STGCN baseline [Yu et al., IJCAI 2018]: sandwiched ST-Conv blocks —
// gated temporal convolution (GLU), Chebyshev graph convolution, gated
// temporal convolution — followed by an output layer.

#ifndef STWA_BASELINES_STGCN_H_
#define STWA_BASELINES_STGCN_H_

#include <memory>

#include "baselines/common.h"
#include "nn/mlp.h"
#include "train/trainer.h"

namespace stwa {
namespace baselines {

/// Gated temporal convolution: GLU over a 2*d_out conv output.
class GatedTemporalConv : public nn::Module {
 public:
  GatedTemporalConv(int64_t d_in, int64_t d_out, int64_t taps,
                    Rng* rng = nullptr);

  ag::Var Forward(const ag::Var& x) const;

  int64_t out_len(int64_t in_len) const { return conv_->out_len(in_len); }

 private:
  int64_t d_out_;
  std::unique_ptr<TemporalConv> conv_;  // d_in -> 2*d_out
};

/// STGCN forecaster.
class Stgcn : public train::ForecastModel {
 public:
  explicit Stgcn(BaselineConfig config, Rng* rng = nullptr);

  ag::Var Forward(const Tensor& x, bool training) override;
  std::string name() const override { return "STGCN"; }

 private:
  BaselineConfig config_;
  struct Block {
    std::unique_ptr<GatedTemporalConv> tconv1;
    std::unique_ptr<nn::Linear> gconv;  // applied after graph mixing
    std::unique_ptr<GatedTemporalConv> tconv2;
  };
  std::vector<Block> blocks_;
  Tensor support_;  // symmetric normalised adjacency
  int64_t final_len_ = 0;
  std::unique_ptr<nn::Linear> flatten_;
  std::unique_ptr<nn::Mlp> predictor_;
};

}  // namespace baselines
}  // namespace stwa

#endif  // STWA_BASELINES_STGCN_H_
