#include "baselines/longformer.h"

#include <cmath>

#include "common/check.h"

namespace stwa {
namespace baselines {

LongFormer::LongFormer(BaselineConfig config, int64_t window_radius,
                       Rng* rng)
    : config_(config) {
  STWA_CHECK(config_.num_sensors > 0, "LongFormer needs num_sensors");
  Rng& r = rng != nullptr ? *rng : GlobalRng();
  if (window_radius < 0) {
    window_radius = std::max<int64_t>(1, config_.history / 4);
  }
  embed_ = std::make_unique<nn::Linear>(config_.features, config_.d_model,
                                        /*bias=*/true, &r);
  RegisterModule("embed", embed_.get());
  for (int64_t l = 0; l < config_.num_layers; ++l) {
    Block b;
    nn::AttentionConfig ac;
    ac.d_model = config_.d_model;
    ac.num_heads = 4;
    ac.window_radius = window_radius;
    b.attn = std::make_unique<nn::MultiHeadSelfAttention>(ac, &r);
    b.norm1 = std::make_unique<nn::LayerNorm>(config_.d_model);
    b.ff1 = std::make_unique<nn::Linear>(config_.d_model,
                                         2 * config_.d_model, true, &r);
    b.ff2 = std::make_unique<nn::Linear>(2 * config_.d_model,
                                         config_.d_model, true, &r);
    b.norm2 = std::make_unique<nn::LayerNorm>(config_.d_model);
    RegisterModule("attn" + std::to_string(l), b.attn.get());
    RegisterModule("norm1_" + std::to_string(l), b.norm1.get());
    RegisterModule("ff1_" + std::to_string(l), b.ff1.get());
    RegisterModule("ff2_" + std::to_string(l), b.ff2.get());
    RegisterModule("norm2_" + std::to_string(l), b.norm2.get());
    blocks_.push_back(std::move(b));
  }
  flatten_ = std::make_unique<nn::Linear>(
      config_.history * config_.d_model, config_.predictor_hidden, true, &r);
  RegisterModule("flatten", flatten_.get());
  predictor_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{config_.predictor_hidden,
                           config_.predictor_hidden,
                           config_.horizon * config_.features},
      nn::Activation::kRelu, nn::Activation::kNone, &r);
  RegisterModule("predictor", predictor_.get());
  // Fixed sinusoidal positional encoding.
  positional_ = Tensor(Shape{config_.history, config_.d_model});
  for (int64_t t = 0; t < config_.history; ++t) {
    for (int64_t i = 0; i < config_.d_model; ++i) {
      const double rate =
          std::pow(10000.0, -static_cast<double>(i / 2 * 2) /
                                 config_.d_model);
      positional_({t, i}) = static_cast<float>(
          i % 2 == 0 ? std::sin(t * rate) : std::cos(t * rate));
    }
  }
}

ag::Var LongFormer::Forward(const Tensor& x, bool /*training*/) {
  STWA_CHECK(x.rank() == 4 && x.dim(1) == config_.num_sensors &&
                 x.dim(2) == config_.history,
             "LongFormer input mismatch: ", ShapeToString(x.shape()));
  const int64_t batch = x.dim(0);
  const int64_t sensors = config_.num_sensors;
  // Sensors fold into the batch (the model is spatial agnostic).
  ag::Var folded = ag::Reshape(ag::Var(x), {batch * sensors,
                                            config_.history,
                                            config_.features});
  ag::Var h = ag::Add(embed_->Forward(folded), ag::Var(positional_));
  for (const Block& b : blocks_) {
    h = b.norm1->Forward(ag::Add(h, b.attn->Forward(h)));
    ag::Var ff = b.ff2->Forward(ag::Relu(b.ff1->Forward(h)));
    h = b.norm2->Forward(ag::Add(h, ff));
  }
  ag::Var flat = ag::Reshape(
      h, {batch * sensors, config_.history * config_.d_model});
  ag::Var pred = predictor_->Forward(ag::Relu(flatten_->Forward(flat)));
  return ag::Reshape(pred, {batch, sensors, config_.horizon,
                            config_.features});
}

}  // namespace baselines
}  // namespace stwa
