// AGCRN baseline [Bai et al., NeurIPS 2020]: Adaptive Graph Convolutional
// Recurrent Network. Two key mechanisms, both spatial-aware:
//   * NAPL (node adaptive parameter learning): per-node weights are
//     generated from learnable node embeddings against a shared weight
//     pool, W^(i) = E_i @ W_pool;
//   * DAGG (data adaptive graph generation): the adjacency is learned as
//     softmax(relu(E E^T)) — no predefined graph needed.
// The recurrent cell is a GRU whose gates are NAPL graph convolutions.

#ifndef STWA_BASELINES_AGCRN_H_
#define STWA_BASELINES_AGCRN_H_

#include <memory>

#include "baselines/common.h"
#include "nn/mlp.h"
#include "train/trainer.h"

namespace stwa {
namespace baselines {

/// NAPL graph convolution: out = (A x) @ W^(i) + b^(i), with W^(i)/b^(i)
/// generated per node from the node embeddings.
class NaplGraphConv : public nn::Module {
 public:
  NaplGraphConv(int64_t d_in, int64_t d_out, int64_t emb_dim,
                Rng* rng = nullptr);

  /// x [B, N, d_in], adj [N, N] (Var for differentiability),
  /// emb [N, emb_dim] -> [B, N, d_out].
  ag::Var Forward(const ag::Var& x, const ag::Var& adj,
                  const ag::Var& emb) const;

 private:
  int64_t d_in_;
  int64_t d_out_;
  ag::Var pool_;       // [emb, d_in * d_out]
  ag::Var bias_pool_;  // [emb, d_out]
};

/// AGCRN forecaster.
class Agcrn : public train::ForecastModel {
 public:
  explicit Agcrn(BaselineConfig config, Rng* rng = nullptr);

  ag::Var Forward(const Tensor& x, bool training) override;
  std::string name() const override { return "AGCRN"; }

  /// Learned node embeddings [N, emb] (Figure-9-style analysis).
  Tensor NodeEmbeddings() const { return node_emb_.value().Clone(); }

 private:
  BaselineConfig config_;
  int64_t emb_dim_ = 8;
  ag::Var node_emb_;
  std::unique_ptr<NaplGraphConv> gate_rz_;
  std::unique_ptr<NaplGraphConv> gate_n_;
  std::unique_ptr<nn::Mlp> predictor_;
};

}  // namespace baselines
}  // namespace stwa

#endif  // STWA_BASELINES_AGCRN_H_
