#include "baselines/dcrnn.h"

#include "common/check.h"
#include "nn/init.h"

namespace stwa {
namespace baselines {

DiffusionConv::DiffusionConv(std::vector<Tensor> supports, int64_t d_in,
                             int64_t d_out, Rng* rng)
    : supports_(std::move(supports)) {
  STWA_CHECK(!supports_.empty(), "diffusion conv needs supports");
  Rng& r = rng != nullptr ? *rng : GlobalRng();
  const int64_t total = static_cast<int64_t>(supports_.size()) + 1;
  for (int64_t s = 0; s < total; ++s) {
    weights_.push_back(RegisterParameter(
        "w" + std::to_string(s),
        nn::XavierUniform({d_in, d_out}, d_in * total, d_out, r)));
  }
  bias_ = RegisterParameter("bias", Tensor(Shape{d_out}));
}

ag::Var DiffusionConv::Forward(const ag::Var& x) const {
  // Identity term + one term per diffusion support.
  ag::Var acc = ag::MatMul(x, weights_[0]);
  for (size_t s = 0; s < supports_.size(); ++s) {
    acc = ag::Add(acc, ag::MatMul(GraphMix(supports_[s], x),
                                  weights_[s + 1]));
  }
  return ag::Add(acc, bias_);
}

Dcrnn::Dcrnn(BaselineConfig config, Rng* rng) : config_(config) {
  STWA_CHECK(config_.num_sensors > 0, "Dcrnn needs num_sensors");
  STWA_CHECK(!config_.supports.empty(),
             "Dcrnn needs diffusion supports (graph required)");
  Rng& r = rng != nullptr ? *rng : GlobalRng();
  const int64_t h = config_.d_model;
  gate_rz_ = std::make_unique<DiffusionConv>(
      config_.supports, config_.features + h, 2 * h, &r);
  gate_n_ = std::make_unique<DiffusionConv>(config_.supports,
                                            config_.features + h, h, &r);
  RegisterModule("gate_rz", gate_rz_.get());
  RegisterModule("gate_n", gate_n_.get());
  predictor_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{h, config_.predictor_hidden,
                           config_.horizon * config_.features},
      nn::Activation::kRelu, nn::Activation::kNone, &r);
  RegisterModule("predictor", predictor_.get());
}

ag::Var Dcrnn::Forward(const Tensor& x, bool /*training*/) {
  STWA_CHECK(x.rank() == 4 && x.dim(1) == config_.num_sensors &&
                 x.dim(2) == config_.history,
             "Dcrnn input mismatch: ", ShapeToString(x.shape()));
  const int64_t batch = x.dim(0);
  const int64_t sensors = config_.num_sensors;
  const int64_t h = config_.d_model;
  ag::Var input(x);
  ag::Var state(Tensor(Shape{batch, sensors, h}));
  for (int64_t t = 0; t < config_.history; ++t) {
    ag::Var x_t = ag::Reshape(ag::Slice(input, 2, t, 1),
                              {batch, sensors, config_.features});
    // DCGRU step: gates via diffusion convolution over [x_t || state].
    ag::Var xs = ag::Concat({x_t, state}, -1);
    ag::Var rz = ag::Sigmoid(gate_rz_->Forward(xs));
    ag::Var r = ag::Slice(rz, -1, 0, h);
    ag::Var z = ag::Slice(rz, -1, h, h);
    ag::Var xn = ag::Concat({x_t, ag::Mul(r, state)}, -1);
    ag::Var n = ag::Tanh(gate_n_->Forward(xn));
    ag::Var one_minus_z = ag::AddScalar(ag::Neg(z), 1.0f);
    state = ag::Add(ag::Mul(one_minus_z, n), ag::Mul(z, state));
  }
  ag::Var pred = predictor_->Forward(state);
  return ag::Reshape(pred, {batch, sensors, config_.horizon,
                            config_.features});
}

}  // namespace baselines
}  // namespace stwa
