// ASTGNN baseline [Guo et al., TKDE 2021]: self-attention with local
// trend-aware context — queries and keys come from a 1-D convolution over
// the local neighbourhood instead of pointwise projections — combined with
// spatial graph convolution per step.

#ifndef STWA_BASELINES_ASTGNN_H_
#define STWA_BASELINES_ASTGNN_H_

#include <memory>

#include "baselines/common.h"
#include "nn/mlp.h"
#include "train/trainer.h"

namespace stwa {
namespace baselines {

/// Trend-aware attention forecaster.
class Astgnn : public train::ForecastModel {
 public:
  explicit Astgnn(BaselineConfig config, Rng* rng = nullptr);

  ag::Var Forward(const Tensor& x, bool training) override;
  std::string name() const override { return "ASTGNN"; }

 private:
  BaselineConfig config_;
  Tensor support_;
  std::unique_ptr<nn::Linear> embed_;
  struct Block {
    /// Trend-aware Q/K: temporal conv (kernel 3, same-ish via crop).
    std::unique_ptr<TemporalConv> q_conv;
    std::unique_ptr<TemporalConv> k_conv;
    std::unique_ptr<nn::Linear> v_proj;
    std::unique_ptr<nn::Linear> gconv;
  };
  std::vector<Block> blocks_;
  std::unique_ptr<nn::Linear> flatten_;
  std::unique_ptr<nn::Mlp> predictor_;
};

}  // namespace baselines
}  // namespace stwa

#endif  // STWA_BASELINES_ASTGNN_H_
