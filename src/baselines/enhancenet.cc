#include "baselines/enhancenet.h"

#include "common/check.h"
#include "tensor/ops.h"

namespace stwa {
namespace baselines {

EnhanceNet::EnhanceNet(BaselineConfig config, Rng* rng) : config_(config) {
  STWA_CHECK(config_.num_sensors > 0, "EnhanceNet needs num_sensors");
  Rng& r = rng != nullptr ? *rng : GlobalRng();
  const int64_t h = config_.d_model;
  memory_ = RegisterParameter(
      "memory",
      ops::MulScalar(Tensor::Randn({config_.num_sensors, mem_dim_}, r),
                     0.3f));
  core::DecoderConfig dc;
  dc.latent_dim = mem_dim_;
  w_ih_decoder_ = std::make_unique<core::ParamDecoder>(
      dc, config_.features, 3 * h, &r);
  w_hh_decoder_ = std::make_unique<core::ParamDecoder>(dc, h, 3 * h, &r);
  RegisterModule("w_ih_dec", w_ih_decoder_.get());
  RegisterModule("w_hh_dec", w_hh_decoder_.get());
  b_ih_ = RegisterParameter("b_ih", Tensor(Shape{3 * h}));
  b_hh_ = RegisterParameter("b_hh", Tensor(Shape{3 * h}));
  if (!config_.supports.empty()) {
    gconv_ = std::make_unique<nn::Linear>(h, h, true, &r);
    RegisterModule("gconv", gconv_.get());
  }
  predictor_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{h, config_.predictor_hidden,
                           config_.horizon * config_.features},
      nn::Activation::kRelu, nn::Activation::kNone, &r);
  RegisterModule("predictor", predictor_.get());
}

ag::Var EnhanceNet::Forward(const Tensor& x, bool /*training*/) {
  STWA_CHECK(x.rank() == 4 && x.dim(1) == config_.num_sensors &&
                 x.dim(2) == config_.history,
             "EnhanceNet input mismatch: ", ShapeToString(x.shape()));
  const int64_t batch = x.dim(0);
  const int64_t n = config_.num_sensors;
  const int64_t h = config_.d_model;
  ag::Var input(x);
  // Deterministic memory -> per-node GRU weights (spatial aware, fixed
  // across time: no z_t, no sampling).
  ag::Var mem3 = ag::Reshape(memory_, {1, n, mem_dim_});
  ag::Var w_ih = w_ih_decoder_->Forward(mem3);  // [1, N, F, 3h]
  ag::Var w_hh = w_hh_decoder_->Forward(mem3);  // [1, N, h, 3h]
  ag::Var state(Tensor(Shape{batch, n, 1, h}));
  for (int64_t t = 0; t < config_.history; ++t) {
    ag::Var x_t = ag::Reshape(ag::Slice(input, 2, t, 1),
                              {batch, n, 1, config_.features});
    state = nn::GruCell::Step(x_t, state, w_ih, w_hh, b_ih_, b_hh_, h);
  }
  ag::Var final_state = ag::Reshape(state, {batch, n, h});
  if (gconv_ != nullptr) {
    final_state = ag::Add(
        final_state,
        ag::Relu(gconv_->Forward(
            GraphMix(config_.supports.front(), final_state))));
  }
  ag::Var pred = predictor_->Forward(final_state);
  return ag::Reshape(pred, {batch, n, config_.horizon, config_.features});
}

}  // namespace baselines
}  // namespace stwa
