// DCRNN baseline [Li et al., ICLR 2018]: GRU whose matrix multiplications
// are replaced by k-hop diffusion convolutions over the sensor graph.
// Spatio-temporal agnostic (shared weights across sensors and time) but
// models sensor correlations through the diffusion supports.

#ifndef STWA_BASELINES_DCRNN_H_
#define STWA_BASELINES_DCRNN_H_

#include <memory>

#include "baselines/common.h"
#include "nn/mlp.h"
#include "train/trainer.h"

namespace stwa {
namespace baselines {

/// One diffusion-convolutional gate: out = sum_s A_s X W_s + b over all
/// supports (identity + k-hop forward/backward random walks).
class DiffusionConv : public nn::Module {
 public:
  DiffusionConv(std::vector<Tensor> supports, int64_t d_in, int64_t d_out,
                Rng* rng = nullptr);

  /// x [B, N, d_in] -> [B, N, d_out].
  ag::Var Forward(const ag::Var& x) const;

 private:
  std::vector<Tensor> supports_;  // includes the implicit identity
  std::vector<ag::Var> weights_;
  ag::Var bias_;
};

/// Diffusion-convolutional GRU forecaster.
class Dcrnn : public train::ForecastModel {
 public:
  explicit Dcrnn(BaselineConfig config, Rng* rng = nullptr);

  ag::Var Forward(const Tensor& x, bool training) override;
  std::string name() const override { return "DCRNN"; }

 private:
  BaselineConfig config_;
  std::unique_ptr<DiffusionConv> gate_rz_;  // produces 2h (reset, update)
  std::unique_ptr<DiffusionConv> gate_n_;   // candidate
  std::unique_ptr<nn::Mlp> predictor_;
};

}  // namespace baselines
}  // namespace stwa

#endif  // STWA_BASELINES_DCRNN_H_
