#include "baselines/registry.h"

#include "baselines/agcrn.h"
#include "baselines/astgnn.h"
#include "baselines/dcrnn.h"
#include "baselines/enhancenet.h"
#include "baselines/gwn.h"
#include "baselines/longformer.h"
#include "baselines/meta_lstm.h"
#include "baselines/stfgnn.h"
#include "baselines/stg2seq.h"
#include "baselines/stgcn.h"
#include "baselines/stsgcn.h"
#include "baselines/var.h"
#include "common/check.h"
#include "core/enhanced_models.h"
#include "core/stwa_model.h"

namespace stwa {
namespace baselines {

std::vector<std::string> AllBaselineNames() {
  return {"LongFormer", "DCRNN",  "STGCN",      "STG2Seq",
          "GWN",        "STSGCN", "ASTGNN",     "STFGNN",
          "EnhanceNet", "AGCRN",  "meta-LSTM"};
}

namespace {

BaselineConfig ToBaselineConfig(const data::TrafficDataset& dataset,
                                const ModelSettings& s) {
  BaselineConfig c;
  c.num_sensors = dataset.num_sensors();
  c.history = s.history;
  c.horizon = s.horizon;
  c.features = dataset.num_features();
  c.d_model = s.d_model;
  c.num_layers = s.num_layers;
  c.predictor_hidden = s.predictor_hidden;
  c.supports = {dataset.graph.SymNormalizedWithSelfLoops()};
  return c;
}

core::StwaConfig ToStwaConfig(const data::TrafficDataset& dataset,
                              const ModelSettings& s) {
  core::StwaConfig c;
  c.num_sensors = dataset.num_sensors();
  c.history = s.history;
  c.horizon = s.horizon;
  c.features = dataset.num_features();
  c.window_sizes = s.window_sizes;
  c.proxies = s.proxies;
  c.heads = s.heads;
  c.d_model = s.d_model;
  c.latent_dim = s.latent_dim;
  c.predictor_hidden = s.predictor_hidden;
  c.kl_weight = s.kl_weight;
  return c;
}

core::EnhancedConfig ToEnhancedConfig(const data::TrafficDataset& dataset,
                                      const ModelSettings& s,
                                      core::LatentMode mode) {
  core::EnhancedConfig c;
  c.num_sensors = dataset.num_sensors();
  c.history = s.history;
  c.horizon = s.horizon;
  c.features = dataset.num_features();
  c.d_model = s.d_model;
  c.latent_dim = s.latent_dim;
  c.predictor_hidden = s.predictor_hidden;
  c.num_layers = s.num_layers;
  c.latent_mode = mode;
  c.kl_weight = s.kl_weight;
  return c;
}

}  // namespace

std::unique_ptr<train::ForecastModel> MakeModel(
    const std::string& name, const data::TrafficDataset& dataset,
    const ModelSettings& settings) {
  Rng rng(settings.seed);
  // Baselines.
  if (name == "LongFormer") {
    return std::make_unique<LongFormer>(ToBaselineConfig(dataset, settings),
                                        -1, &rng);
  }
  if (name == "DCRNN") {
    BaselineConfig c = ToBaselineConfig(dataset, settings);
    c.supports = dataset.graph.DiffusionSupports(2);
    return std::make_unique<Dcrnn>(c, &rng);
  }
  if (name == "STGCN") {
    return std::make_unique<Stgcn>(ToBaselineConfig(dataset, settings),
                                   &rng);
  }
  if (name == "STG2Seq") {
    return std::make_unique<Stg2Seq>(ToBaselineConfig(dataset, settings),
                                     &rng);
  }
  if (name == "GWN") {
    return std::make_unique<GraphWaveNet>(
        ToBaselineConfig(dataset, settings), &rng);
  }
  if (name == "STSGCN") {
    return std::make_unique<Stsgcn>(ToBaselineConfig(dataset, settings),
                                    &rng);
  }
  if (name == "ASTGNN") {
    return std::make_unique<Astgnn>(ToBaselineConfig(dataset, settings),
                                    &rng);
  }
  if (name == "STFGNN") {
    Tensor temporal = TemporalSimilarityGraph(
        dataset.values, dataset.steps_per_day, /*top_k=*/3);
    return std::make_unique<Stfgnn>(ToBaselineConfig(dataset, settings),
                                    temporal, &rng);
  }
  if (name == "EnhanceNet") {
    return std::make_unique<EnhanceNet>(ToBaselineConfig(dataset, settings),
                                        &rng);
  }
  if (name == "AGCRN") {
    return std::make_unique<Agcrn>(ToBaselineConfig(dataset, settings),
                                   &rng);
  }
  if (name == "meta-LSTM") {
    return std::make_unique<MetaLstm>(ToBaselineConfig(dataset, settings),
                                      &rng);
  }
  if (name == "VAR") {
    return std::make_unique<VarModel>(ToBaselineConfig(dataset, settings),
                                      &rng);
  }
  // Paper model variants.
  if (name == "ST-WA" || name == "S-WA" || name == "WA" || name == "WA-1" ||
      name == "Det-ST-WA" || name == "ST-WA-mean") {
    core::StwaConfig base = ToStwaConfig(dataset, settings);
    return std::make_unique<core::StwaModel>(
        core::MakeVariantConfig(base, name), &rng);
  }
  // Enhanced models (Table VII).
  if (name == "GRU") {
    return std::make_unique<core::GruForecaster>(
        ToEnhancedConfig(dataset, settings, core::LatentMode::kNone), &rng);
  }
  if (name == "GRU+S") {
    return std::make_unique<core::GruForecaster>(
        ToEnhancedConfig(dataset, settings, core::LatentMode::kSpatial),
        &rng);
  }
  if (name == "GRU+ST") {
    return std::make_unique<core::GruForecaster>(
        ToEnhancedConfig(dataset, settings,
                         core::LatentMode::kSpatioTemporal),
        &rng);
  }
  if (name == "ATT" || name == "SA") {
    return std::make_unique<core::AttForecaster>(
        ToEnhancedConfig(dataset, settings, core::LatentMode::kNone), &rng);
  }
  if (name == "ATT+S") {
    return std::make_unique<core::AttForecaster>(
        ToEnhancedConfig(dataset, settings, core::LatentMode::kSpatial),
        &rng);
  }
  if (name == "ATT+ST") {
    return std::make_unique<core::AttForecaster>(
        ToEnhancedConfig(dataset, settings,
                         core::LatentMode::kSpatioTemporal),
        &rng);
  }
  STWA_FAIL("unknown model '", name, "'");
}

}  // namespace baselines
}  // namespace stwa
