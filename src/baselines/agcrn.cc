#include "baselines/agcrn.h"

#include "common/check.h"
#include "nn/init.h"
#include "tensor/ops.h"

namespace stwa {
namespace baselines {

NaplGraphConv::NaplGraphConv(int64_t d_in, int64_t d_out, int64_t emb_dim,
                             Rng* rng)
    : d_in_(d_in), d_out_(d_out) {
  Rng& r = rng != nullptr ? *rng : GlobalRng();
  pool_ = RegisterParameter(
      "pool", ops::MulScalar(
                  nn::XavierUniform({emb_dim, d_in * d_out}, d_in, d_out, r),
                  1.0f));
  bias_pool_ = RegisterParameter(
      "bias_pool", Tensor(Shape{emb_dim, d_out}));
}

ag::Var NaplGraphConv::Forward(const ag::Var& x, const ag::Var& adj,
                               const ag::Var& emb) const {
  const int64_t batch = x.value().dim(0);
  const int64_t n = x.value().dim(1);
  STWA_CHECK(x.value().dim(2) == d_in_, "NAPL d_in mismatch");
  // Data-adaptive aggregation.
  ag::Var mixed = ag::MatMul(adj, x);  // [B, N, d_in]
  // Per-node weights from the pool: [N, emb] @ [emb, d_in*d_out].
  ag::Var w = ag::Reshape(ag::MatMul(emb, pool_), {n, d_in_, d_out_});
  ag::Var b = ag::MatMul(emb, bias_pool_);  // [N, d_out]
  // [B, N, 1, d_in] @ [N, d_in, d_out] -> [B, N, 1, d_out].
  ag::Var out = ag::MatMul(ag::Reshape(mixed, {batch, n, 1, d_in_}), w);
  return ag::Add(ag::Reshape(out, {batch, n, d_out_}), b);
}

Agcrn::Agcrn(BaselineConfig config, Rng* rng) : config_(config) {
  STWA_CHECK(config_.num_sensors > 0, "Agcrn needs num_sensors");
  Rng& r = rng != nullptr ? *rng : GlobalRng();
  const int64_t h = config_.d_model;
  node_emb_ = RegisterParameter(
      "node_emb",
      ops::MulScalar(Tensor::Randn({config_.num_sensors, emb_dim_}, r),
                     0.5f));
  gate_rz_ = std::make_unique<NaplGraphConv>(config_.features + h, 2 * h,
                                             emb_dim_, &r);
  gate_n_ = std::make_unique<NaplGraphConv>(config_.features + h, h,
                                            emb_dim_, &r);
  RegisterModule("gate_rz", gate_rz_.get());
  RegisterModule("gate_n", gate_n_.get());
  predictor_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{h, config_.predictor_hidden,
                           config_.horizon * config_.features},
      nn::Activation::kRelu, nn::Activation::kNone, &r);
  RegisterModule("predictor", predictor_.get());
}

ag::Var Agcrn::Forward(const Tensor& x, bool /*training*/) {
  STWA_CHECK(x.rank() == 4 && x.dim(1) == config_.num_sensors &&
                 x.dim(2) == config_.history,
             "Agcrn input mismatch: ", ShapeToString(x.shape()));
  const int64_t batch = x.dim(0);
  const int64_t n = config_.num_sensors;
  const int64_t h = config_.d_model;
  ag::Var input(x);
  // Data-adaptive adjacency (recomputed each forward; differentiable).
  ag::Var adj = ag::SoftmaxLast(ag::Relu(
      ag::MatMul(node_emb_, ag::TransposeLast2(node_emb_))));
  ag::Var state(Tensor(Shape{batch, n, h}));
  for (int64_t t = 0; t < config_.history; ++t) {
    ag::Var x_t = ag::Reshape(ag::Slice(input, 2, t, 1),
                              {batch, n, config_.features});
    ag::Var xs = ag::Concat({x_t, state}, -1);
    ag::Var rz = ag::Sigmoid(gate_rz_->Forward(xs, adj, node_emb_));
    ag::Var r = ag::Slice(rz, -1, 0, h);
    ag::Var z = ag::Slice(rz, -1, h, h);
    ag::Var xn = ag::Concat({x_t, ag::Mul(r, state)}, -1);
    ag::Var nn_gate = ag::Tanh(gate_n_->Forward(xn, adj, node_emb_));
    ag::Var one_minus_z = ag::AddScalar(ag::Neg(z), 1.0f);
    state = ag::Add(ag::Mul(one_minus_z, nn_gate), ag::Mul(z, state));
  }
  ag::Var pred = predictor_->Forward(state);
  return ag::Reshape(pred, {batch, n, config_.horizon, config_.features});
}

}  // namespace baselines
}  // namespace stwa
