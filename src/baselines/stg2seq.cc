#include "baselines/stg2seq.h"

#include "common/check.h"

namespace stwa {
namespace baselines {

Stg2Seq::Stg2Seq(BaselineConfig config, Rng* rng) : config_(config) {
  STWA_CHECK(config_.num_sensors > 0, "Stg2Seq needs num_sensors");
  STWA_CHECK(!config_.supports.empty(), "Stg2Seq needs a graph support");
  support_ = config_.supports.front();
  Rng& r = rng != nullptr ? *rng : GlobalRng();
  const int64_t d = config_.d_model;
  embed_ = std::make_unique<nn::Linear>(
      config_.history * config_.features, d, /*bias=*/true, &r);
  RegisterModule("embed", embed_.get());
  for (int64_t l = 0; l < config_.num_layers; ++l) {
    Block b;
    b.value = std::make_unique<nn::Linear>(d, d, true, &r);
    b.gate = std::make_unique<nn::Linear>(d, d, true, &r);
    RegisterModule("value" + std::to_string(l), b.value.get());
    RegisterModule("gate" + std::to_string(l), b.gate.get());
    blocks_.push_back(std::move(b));
  }
  attn_ = std::make_unique<nn::Linear>(d, d, /*bias=*/false, &r);
  RegisterModule("attn", attn_.get());
  predictor_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{d, config_.predictor_hidden,
                           config_.horizon * config_.features},
      nn::Activation::kRelu, nn::Activation::kNone, &r);
  RegisterModule("predictor", predictor_.get());
}

ag::Var Stg2Seq::Forward(const Tensor& x, bool /*training*/) {
  STWA_CHECK(x.rank() == 4 && x.dim(1) == config_.num_sensors &&
                 x.dim(2) == config_.history,
             "Stg2Seq input mismatch: ", ShapeToString(x.shape()));
  const int64_t batch = x.dim(0);
  const int64_t sensors = config_.num_sensors;
  // Long-term encoder: whole window as channels per sensor.
  ag::Var h = embed_->Forward(ag::Reshape(
      ag::Var(x), {batch, sensors, config_.history * config_.features}));
  for (const Block& b : blocks_) {
    // Gated graph convolution with residual: h' = h + GLU(A h).
    ag::Var mixed = GraphMix(support_, h);
    ag::Var update = ag::Mul(b.value->Forward(mixed),
                             ag::Sigmoid(b.gate->Forward(mixed)));
    h = ag::Add(h, update);
  }
  // Output attention: channel-wise gate before the seq2seq-style joint
  // multi-step prediction.
  h = ag::Mul(h, ag::Sigmoid(attn_->Forward(h)));
  ag::Var pred = predictor_->Forward(h);
  return ag::Reshape(pred, {batch, sensors, config_.horizon,
                            config_.features});
}

}  // namespace baselines
}  // namespace stwa
