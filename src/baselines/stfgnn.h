// STFGNN baseline [Li & Zhu, AAAI 2021]: spatial-temporal fusion graph —
// a dense (4N)x(4N) operator assembled from the spatial graph, a
// data-driven temporal similarity graph, and inter-slice connectivity —
// convolved over sliding groups of 4 steps, in parallel with a gated
// dilated convolution.

#ifndef STWA_BASELINES_STFGNN_H_
#define STWA_BASELINES_STFGNN_H_

#include <memory>

#include "baselines/common.h"
#include "nn/mlp.h"
#include "train/trainer.h"

namespace stwa {
namespace baselines {

/// Computes a temporal similarity graph between sensors from their series:
/// a cheap DTW substitute using normalised cross-correlation of the mean
/// daily profiles; the top-k most similar pairs per sensor get edges.
Tensor TemporalSimilarityGraph(const Tensor& values, int64_t steps_per_day,
                               int64_t top_k);

/// Spatial-temporal fusion graph forecaster.
class Stfgnn : public train::ForecastModel {
 public:
  /// `temporal_graph` is the [N, N] similarity graph (see
  /// TemporalSimilarityGraph); pass an empty tensor to fall back to the
  /// identity.
  Stfgnn(BaselineConfig config, Tensor temporal_graph = {},
         Rng* rng = nullptr);

  ag::Var Forward(const Tensor& x, bool training) override;
  std::string name() const override { return "STFGNN"; }

 private:
  BaselineConfig config_;
  Tensor fusion_;  // [4N, 4N]
  std::unique_ptr<nn::Linear> embed_;
  struct Block {
    std::unique_ptr<nn::Linear> gc;
    std::unique_ptr<nn::Linear> gate;
    std::unique_ptr<TemporalConv> tconv_f;
    std::unique_ptr<TemporalConv> tconv_g;
  };
  std::vector<Block> blocks_;
  int64_t final_len_ = 0;
  std::unique_ptr<nn::Linear> flatten_;
  std::unique_ptr<nn::Mlp> predictor_;
};

}  // namespace baselines
}  // namespace stwa

#endif  // STWA_BASELINES_STFGNN_H_
