// LongFormer baseline [Beltagy et al. 2020]: Transformer encoder with
// sliding-window attention (O(H*S) instead of O(H^2)), spatio-temporal
// agnostic, no sensor correlation modelling.

#ifndef STWA_BASELINES_LONGFORMER_H_
#define STWA_BASELINES_LONGFORMER_H_

#include <memory>

#include "baselines/common.h"
#include "nn/attention.h"
#include "nn/layer_norm.h"
#include "nn/mlp.h"
#include "train/trainer.h"

namespace stwa {
namespace baselines {

/// Sliding-window Transformer forecaster applied per sensor.
class LongFormer : public train::ForecastModel {
 public:
  /// `window_radius` is the sliding attention radius (paper-style local
  /// attention); defaults to a quarter of the history.
  LongFormer(BaselineConfig config, int64_t window_radius = -1,
             Rng* rng = nullptr);

  ag::Var Forward(const Tensor& x, bool training) override;
  std::string name() const override { return "LongFormer"; }

 private:
  BaselineConfig config_;
  std::unique_ptr<nn::Linear> embed_;
  struct Block {
    std::unique_ptr<nn::MultiHeadSelfAttention> attn;
    std::unique_ptr<nn::LayerNorm> norm1;
    std::unique_ptr<nn::Linear> ff1;
    std::unique_ptr<nn::Linear> ff2;
    std::unique_ptr<nn::LayerNorm> norm2;
  };
  std::vector<Block> blocks_;
  std::unique_ptr<nn::Linear> flatten_;
  std::unique_ptr<nn::Mlp> predictor_;
  Tensor positional_;  // [H, d]
};

}  // namespace baselines
}  // namespace stwa

#endif  // STWA_BASELINES_LONGFORMER_H_
