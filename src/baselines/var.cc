#include "baselines/var.h"

#include "common/check.h"

namespace stwa {
namespace baselines {

VarModel::VarModel(BaselineConfig config, Rng* rng) : config_(config) {
  STWA_CHECK(config_.num_sensors > 0, "VarModel needs num_sensors");
  const int64_t in = config_.num_sensors * config_.history *
                     config_.features;
  const int64_t out = config_.num_sensors * config_.horizon *
                      config_.features;
  map_ = std::make_unique<nn::Linear>(in, out, /*bias=*/true, rng);
  RegisterModule("map", map_.get());
}

ag::Var VarModel::Forward(const Tensor& x, bool /*training*/) {
  STWA_CHECK(x.rank() == 4 && x.dim(1) == config_.num_sensors &&
                 x.dim(2) == config_.history,
             "VarModel input mismatch: ", ShapeToString(x.shape()));
  const int64_t batch = x.dim(0);
  ag::Var flat = ag::Reshape(
      ag::Var(x), {batch, config_.num_sensors * config_.history *
                              config_.features});
  ag::Var pred = map_->Forward(flat);
  return ag::Reshape(pred, {batch, config_.num_sensors, config_.horizon,
                            config_.features});
}

}  // namespace baselines
}  // namespace stwa
