// STG2Seq baseline [Bai et al., AAAI 2019]: stacked gated graph
// convolution modules over the recent window (time folded into channels)
// with a residual structure and an attention-weighted output, producing
// all horizon steps at once.

#ifndef STWA_BASELINES_STG2SEQ_H_
#define STWA_BASELINES_STG2SEQ_H_

#include <memory>

#include "baselines/common.h"
#include "nn/mlp.h"
#include "train/trainer.h"

namespace stwa {
namespace baselines {

/// Gated graph convolution forecaster over the flattened history window.
class Stg2Seq : public train::ForecastModel {
 public:
  explicit Stg2Seq(BaselineConfig config, Rng* rng = nullptr);

  ag::Var Forward(const Tensor& x, bool training) override;
  std::string name() const override { return "STG2Seq"; }

 private:
  BaselineConfig config_;
  Tensor support_;
  std::unique_ptr<nn::Linear> embed_;
  struct Block {
    std::unique_ptr<nn::Linear> value;
    std::unique_ptr<nn::Linear> gate;
  };
  std::vector<Block> blocks_;
  std::unique_ptr<nn::Linear> attn_;  // output attention over features
  std::unique_ptr<nn::Mlp> predictor_;
};

}  // namespace baselines
}  // namespace stwa

#endif  // STWA_BASELINES_STG2SEQ_H_
