// Graph WaveNet baseline [Wu et al., IJCAI 2019]: dilated causal temporal
// convolutions with gated activations, graph convolution over both the
// given supports and a self-learned adaptive adjacency (node embeddings
// E1 E2^T), residual and skip connections.

#ifndef STWA_BASELINES_GWN_H_
#define STWA_BASELINES_GWN_H_

#include <memory>

#include "baselines/common.h"
#include "nn/mlp.h"
#include "train/trainer.h"

namespace stwa {
namespace baselines {

/// Graph WaveNet forecaster.
class GraphWaveNet : public train::ForecastModel {
 public:
  explicit GraphWaveNet(BaselineConfig config, Rng* rng = nullptr);

  ag::Var Forward(const Tensor& x, bool training) override;
  std::string name() const override { return "GWN"; }

  /// The learned adaptive adjacency softmax(relu(E1 E2^T)) [N, N].
  Tensor AdaptiveAdjacency() const;

 private:
  BaselineConfig config_;
  std::unique_ptr<nn::Linear> embed_;
  ag::Var node_emb1_;  // [N, e]
  ag::Var node_emb2_;  // [N, e]
  struct Block {
    std::unique_ptr<TemporalConv> filter;
    std::unique_ptr<TemporalConv> gate;
    std::unique_ptr<nn::Linear> gconv;
    std::unique_ptr<nn::Linear> skip;
  };
  std::vector<Block> blocks_;
  std::unique_ptr<nn::Mlp> predictor_;
};

}  // namespace baselines
}  // namespace stwa

#endif  // STWA_BASELINES_GWN_H_
