// Classical Vector Auto-Regression (VAR) baseline, as discussed in the
// paper's related work: a single linear map from the flattened history of
// ALL sensors to the flattened horizon of all sensors. Captures linear
// cross-sensor correlations but no nonlinear patterns — the traditional
// method deep models are measured against.

#ifndef STWA_BASELINES_VAR_H_
#define STWA_BASELINES_VAR_H_

#include <memory>

#include "baselines/common.h"
#include "nn/linear.h"
#include "train/trainer.h"

namespace stwa {
namespace baselines {

/// Linear VAR forecaster fitted by gradient descent on the Huber loss
/// (equivalent to regularised least squares under MSE).
class VarModel : public train::ForecastModel {
 public:
  explicit VarModel(BaselineConfig config, Rng* rng = nullptr);

  ag::Var Forward(const Tensor& x, bool training) override;
  std::string name() const override { return "VAR"; }

 private:
  BaselineConfig config_;
  std::unique_ptr<nn::Linear> map_;
};

}  // namespace baselines
}  // namespace stwa

#endif  // STWA_BASELINES_VAR_H_
