#include "baselines/stsgcn.h"

#include "common/check.h"
#include "tensor/ops.h"

namespace stwa {
namespace baselines {
namespace {

/// Builds the localized spatio-temporal sandwich adjacency over 3 slices:
/// block diagonal = spatial adjacency (with self loops), off-diagonal
/// blocks = identity (each sensor connects to itself one step away).
Tensor BuildSandwich(const Tensor& spatial) {
  const int64_t n = spatial.dim(0);
  Tensor a(Shape{3 * n, 3 * n});
  for (int64_t s = 0; s < 3; ++s) {
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        a({s * n + i, s * n + j}) = spatial({i, j});
      }
      a({s * n + i, s * n + i}) += 1.0f;
      if (s + 1 < 3) {
        a({s * n + i, (s + 1) * n + i}) = 1.0f;
        a({(s + 1) * n + i, s * n + i}) = 1.0f;
      }
    }
  }
  // Row normalise.
  for (int64_t i = 0; i < 3 * n; ++i) {
    float deg = 0.0f;
    for (int64_t j = 0; j < 3 * n; ++j) deg += a({i, j});
    if (deg > 0.0f) {
      for (int64_t j = 0; j < 3 * n; ++j) a({i, j}) /= deg;
    }
  }
  return a;
}

}  // namespace

Stsgcn::Stsgcn(BaselineConfig config, Rng* rng) : config_(config) {
  STWA_CHECK(config_.num_sensors > 0, "Stsgcn needs num_sensors");
  STWA_CHECK(!config_.supports.empty(), "Stsgcn needs a graph support");
  STWA_CHECK(config_.history >= 5, "Stsgcn needs history >= 5");
  sandwich_ = BuildSandwich(config_.supports.front());
  Rng& r = rng != nullptr ? *rng : GlobalRng();
  const int64_t d = config_.d_model;
  embed_ = std::make_unique<nn::Linear>(config_.features, d, true, &r);
  RegisterModule("embed", embed_.get());
  // Each module shrinks the sequence by 2 (crop to middle slice).
  const int64_t num_modules = std::min<int64_t>(config_.num_layers,
                                                (config_.history - 1) / 2);
  int64_t len = config_.history;
  for (int64_t m = 0; m < num_modules; ++m) {
    Module3 mod;
    mod.gc1 = std::make_unique<nn::Linear>(d, d, true, &r);
    mod.gc2 = std::make_unique<nn::Linear>(d, d, true, &r);
    RegisterModule("gc1_" + std::to_string(m), mod.gc1.get());
    RegisterModule("gc2_" + std::to_string(m), mod.gc2.get());
    modules_.push_back(std::move(mod));
    len -= 2;
  }
  final_len_ = len;
  flatten_ = std::make_unique<nn::Linear>(len * d, config_.predictor_hidden,
                                          true, &r);
  RegisterModule("flatten", flatten_.get());
  predictor_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{config_.predictor_hidden,
                           config_.predictor_hidden,
                           config_.horizon * config_.features},
      nn::Activation::kRelu, nn::Activation::kNone, &r);
  RegisterModule("predictor", predictor_.get());
}

ag::Var Stsgcn::Forward(const Tensor& x, bool /*training*/) {
  STWA_CHECK(x.rank() == 4 && x.dim(1) == config_.num_sensors &&
                 x.dim(2) == config_.history,
             "Stsgcn input mismatch: ", ShapeToString(x.shape()));
  const int64_t batch = x.dim(0);
  const int64_t n = config_.num_sensors;
  const int64_t d = config_.d_model;
  ag::Var h = embed_->Forward(ag::Var(x));  // [B, N, T, d]
  for (const Module3& mod : modules_) {
    const int64_t len = h.value().dim(2);
    const int64_t out_len = len - 2;
    // For every group of 3 consecutive steps build [B, 3N, d], convolve
    // over the sandwich graph twice, keep the middle slice.
    std::vector<ag::Var> outputs;
    outputs.reserve(out_len);
    for (int64_t t = 0; t < out_len; ++t) {
      // [B, N, 3, d] -> [B, 3, N, d] -> [B, 3N, d]
      ag::Var group = ag::Reshape(
          ag::Permute(ag::Slice(h, 2, t, 3), {0, 2, 1, 3}),
          {batch, 3 * n, d});
      ag::Var g1 = ag::Relu(mod.gc1->Forward(GraphMix(sandwich_, group)));
      ag::Var g2 = ag::Relu(mod.gc2->Forward(GraphMix(sandwich_, g1)));
      // Crop the middle slice [B, N, d].
      outputs.push_back(ag::Slice(g2, 1, n, n));
    }
    // [T-2, B, N, d] -> [B, N, T-2, d]
    h = ag::Permute(ag::Stack(outputs), {1, 2, 0, 3});
  }
  ag::Var flat =
      ag::Reshape(h, {batch, n, final_len_ * d});
  ag::Var pred = predictor_->Forward(ag::Relu(flatten_->Forward(flat)));
  return ag::Reshape(pred, {batch, n, config_.horizon, config_.features});
}

}  // namespace baselines
}  // namespace stwa
