#include "baselines/meta_lstm.h"

#include "common/check.h"

namespace stwa {
namespace baselines {

MetaLstm::MetaLstm(BaselineConfig config, Rng* rng) : config_(config) {
  STWA_CHECK(config_.num_sensors > 0, "MetaLstm needs num_sensors");
  Rng& r = rng != nullptr ? *rng : GlobalRng();
  const int64_t h = config_.d_model;
  meta_cell_ = std::make_unique<nn::LstmCell>(config_.features, meta_dim_,
                                              &r);
  main_cell_ = std::make_unique<nn::LstmCell>(config_.features, h, &r);
  modulation_ = std::make_unique<nn::Linear>(meta_dim_, 2 * h, true, &r);
  RegisterModule("meta", meta_cell_.get());
  RegisterModule("main", main_cell_.get());
  RegisterModule("modulation", modulation_.get());
  predictor_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{h, config_.predictor_hidden,
                           config_.horizon * config_.features},
      nn::Activation::kRelu, nn::Activation::kNone, &r);
  RegisterModule("predictor", predictor_.get());
}

ag::Var MetaLstm::Forward(const Tensor& x, bool /*training*/) {
  STWA_CHECK(x.rank() == 4 && x.dim(1) == config_.num_sensors &&
                 x.dim(2) == config_.history,
             "MetaLstm input mismatch: ", ShapeToString(x.shape()));
  const int64_t batch = x.dim(0);
  const int64_t n = config_.num_sensors;
  const int64_t h = config_.d_model;
  // Spatial agnostic: sensors fold into the batch.
  ag::Var folded = ag::Reshape(ag::Var(x), {batch * n, config_.history,
                                            config_.features});
  ag::Var meta_h(Tensor(Shape{batch * n, meta_dim_}));
  ag::Var meta_c(Tensor(Shape{batch * n, meta_dim_}));
  ag::Var main_h(Tensor(Shape{batch * n, h}));
  ag::Var main_c(Tensor(Shape{batch * n, h}));
  for (int64_t t = 0; t < config_.history; ++t) {
    ag::Var x_t = nn::TimeStep(folded, t);
    meta_cell_->Forward(x_t, &meta_h, &meta_c);
    // Time-varying modulation of the main LSTM's state: the meta hidden
    // state rescales the main hidden state before the main step, so the
    // effective recurrence weights change over time.
    ag::Var gate = ag::Sigmoid(modulation_->Forward(meta_h));  // [*, 4h]
    ag::Var h_scale = ag::MulScalar(ag::Slice(gate, -1, 0, h), 2.0f);
    ag::Var c_scale = ag::MulScalar(ag::Slice(gate, -1, h, h), 2.0f);
    main_h = ag::Mul(main_h, h_scale);
    main_c = ag::Mul(main_c, c_scale);
    main_cell_->Forward(x_t, &main_h, &main_c);
  }
  ag::Var pred = predictor_->Forward(main_h);
  return ag::Reshape(pred, {batch, n, config_.horizon, config_.features});
}

}  // namespace baselines
}  // namespace stwa
