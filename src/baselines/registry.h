// Model factory: builds any model of the empirical study by name, with the
// dataset-appropriate graph supports. Used by every bench binary and by
// the examples.

#ifndef STWA_BASELINES_REGISTRY_H_
#define STWA_BASELINES_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "train/trainer.h"

namespace stwa {
namespace baselines {

/// Settings applied to every constructed model.
struct ModelSettings {
  int64_t history = 12;
  int64_t horizon = 12;
  int64_t d_model = 16;
  int64_t num_layers = 2;
  int64_t predictor_hidden = 64;
  /// ST-WA specific knobs (ignored by baselines).
  std::vector<int64_t> window_sizes = {3, 2, 2};
  int64_t proxies = 1;
  int64_t heads = 2;
  int64_t latent_dim = 8;
  float kl_weight = 1e-3f;
  uint64_t seed = 7;
};

/// Names accepted by MakeModel, in the order of the paper's Table IV plus
/// the ST-WA variants and enhanced models.
std::vector<std::string> AllBaselineNames();

/// Builds a model by name. Accepted names:
///   Baselines: "LongFormer", "DCRNN", "STGCN", "STG2Seq", "GWN",
///              "STSGCN", "ASTGNN", "STFGNN", "EnhanceNet", "AGCRN",
///              "meta-LSTM"
///   Paper models: "ST-WA", "S-WA", "WA", "WA-1", "Det-ST-WA",
///                 "ST-WA-mean"
///   Enhanced:  "GRU", "GRU+S", "GRU+ST", "ATT", "ATT+S", "ATT+ST"
std::unique_ptr<train::ForecastModel> MakeModel(
    const std::string& name, const data::TrafficDataset& dataset,
    const ModelSettings& settings);

}  // namespace baselines
}  // namespace stwa

#endif  // STWA_BASELINES_REGISTRY_H_
