// meta-LSTM baseline [Chen et al., AAAI 2018]: temporal-aware but
// spatial-agnostic — a small meta (hyper) LSTM runs alongside the main
// LSTM and its hidden state generates time-varying scaling vectors for the
// main LSTM's gates. Sensor correlations are NOT modelled (sensors fold
// into the batch), which is why the paper finds it the weakest baseline.

#ifndef STWA_BASELINES_META_LSTM_H_
#define STWA_BASELINES_META_LSTM_H_

#include <memory>

#include "baselines/common.h"
#include "nn/mlp.h"
#include "nn/rnn.h"
#include "train/trainer.h"

namespace stwa {
namespace baselines {

/// Hyper-network LSTM forecaster with time-varying gate modulation.
class MetaLstm : public train::ForecastModel {
 public:
  explicit MetaLstm(BaselineConfig config, Rng* rng = nullptr);

  ag::Var Forward(const Tensor& x, bool training) override;
  std::string name() const override { return "meta-LSTM"; }

 private:
  BaselineConfig config_;
  int64_t meta_dim_ = 8;
  std::unique_ptr<nn::LstmCell> meta_cell_;  // the meta LSTM
  std::unique_ptr<nn::LstmCell> main_cell_;  // the main LSTM
  /// Maps the meta hidden state to multiplicative gate modulation (4h).
  std::unique_ptr<nn::Linear> modulation_;
  std::unique_ptr<nn::Mlp> predictor_;
};

}  // namespace baselines
}  // namespace stwa

#endif  // STWA_BASELINES_META_LSTM_H_
