// EnhanceNet baseline [Cirstea et al., ICDE 2021]: spatial-aware plugin —
// a deterministic per-node memory generates distinct RNN weight matrices
// for every sensor (the paper positions it as the special case of ST-WA
// with zero covariance and no temporal adaption variable), plus graph
// convolution over the final states for sensor correlations.

#ifndef STWA_BASELINES_ENHANCENET_H_
#define STWA_BASELINES_ENHANCENET_H_

#include <memory>

#include "baselines/common.h"
#include "core/param_decoder.h"
#include "nn/mlp.h"
#include "nn/rnn.h"
#include "train/trainer.h"

namespace stwa {
namespace baselines {

/// Deterministic-memory spatial-aware GRU forecaster.
class EnhanceNet : public train::ForecastModel {
 public:
  explicit EnhanceNet(BaselineConfig config, Rng* rng = nullptr);

  ag::Var Forward(const Tensor& x, bool training) override;
  std::string name() const override { return "EnhanceNet"; }

  /// The per-node memory bank [N, mem]; exposed for analysis.
  const ag::Var& memory() const { return memory_; }

 private:
  BaselineConfig config_;
  int64_t mem_dim_ = 16;
  ag::Var memory_;  // deterministic per-node memory
  std::unique_ptr<core::ParamDecoder> w_ih_decoder_;
  std::unique_ptr<core::ParamDecoder> w_hh_decoder_;
  ag::Var b_ih_;
  ag::Var b_hh_;
  std::unique_ptr<nn::Linear> gconv_;
  std::unique_ptr<nn::Mlp> predictor_;
};

}  // namespace baselines
}  // namespace stwa

#endif  // STWA_BASELINES_ENHANCENET_H_
