#include "baselines/common.h"

#include "common/check.h"
#include "nn/init.h"

namespace stwa {
namespace baselines {

ag::Var GraphMix(const Tensor& support, const ag::Var& h) {
  STWA_CHECK(support.rank() == 2 && support.dim(0) == support.dim(1),
             "support must be square [N, N]");
  const int64_t rank = h.value().rank();
  STWA_CHECK(rank >= 2, "GraphMix input rank must be >= 2");
  STWA_CHECK(h.value().dim(-2) == support.dim(0),
             "GraphMix: sensor axis mismatch, support N=", support.dim(0),
             " input ", ShapeToString(h.value().shape()));
  // A [N, N] @ h [..., N, d] broadcasts A across leading axes.
  return ag::MatMul(ag::Var(support), h);
}

TemporalConv::TemporalConv(int64_t d_in, int64_t d_out, int64_t taps,
                           int64_t dilation, Rng* rng)
    : d_in_(d_in), d_out_(d_out), taps_(taps), dilation_(dilation) {
  STWA_CHECK(taps >= 1 && dilation >= 1, "bad temporal conv geometry");
  Rng& r = rng != nullptr ? *rng : GlobalRng();
  for (int64_t k = 0; k < taps; ++k) {
    taps_w_.push_back(RegisterParameter(
        "w" + std::to_string(k),
        nn::XavierUniform({d_in, d_out}, d_in * taps, d_out, r)));
  }
  bias_ = RegisterParameter("bias", Tensor(Shape{d_out}));
}

ag::Var TemporalConv::Forward(const ag::Var& x) const {
  STWA_CHECK(x.value().rank() == 4 && x.value().dim(-1) == d_in_,
             "TemporalConv expects [B, N, T, d_in], got ",
             ShapeToString(x.value().shape()));
  const int64_t in_len = x.value().dim(2);
  const int64_t len = out_len(in_len);
  STWA_CHECK(len >= 1, "temporal conv output would be empty: T=", in_len,
             " taps=", taps_, " dilation=", dilation_);
  ag::Var acc;
  for (int64_t k = 0; k < taps_; ++k) {
    ag::Var window = ag::Slice(x, 2, k * dilation_, len);
    ag::Var term = ag::MatMul(window, taps_w_[k]);
    acc = acc.defined() ? ag::Add(acc, term) : term;
  }
  return ag::Add(acc, bias_);
}

}  // namespace baselines
}  // namespace stwa
