// Shared building blocks for the baseline models: dense graph convolution
// application, temporal convolution over the window axis, and the common
// baseline configuration.

#ifndef STWA_BASELINES_COMMON_H_
#define STWA_BASELINES_COMMON_H_

#include <vector>

#include "autograd/ops.h"
#include "graph/graph.h"
#include "nn/linear.h"

namespace stwa {
namespace baselines {

/// Configuration shared by every baseline forecaster.
struct BaselineConfig {
  int64_t num_sensors = 0;
  int64_t history = 12;
  int64_t horizon = 12;
  int64_t features = 1;
  int64_t d_model = 32;
  int64_t num_layers = 2;
  int64_t predictor_hidden = 256;
  /// Dense sensor adjacency supports (normalisations precomputed from the
  /// dataset graph); empty for models that learn their own adjacency.
  std::vector<Tensor> supports;
};

/// Applies a dense support matrix A [N, N] over the sensor axis of
/// h [B, N, d] (or [B, T, N, d]): out = A @ h along the N axis.
ag::Var GraphMix(const Tensor& support, const ag::Var& h);

/// Temporal 1-D convolution along axis 2 of x [B, N, T, d_in] with kernel
/// weights w[k] of shape [d_in, d_out] (k taps, valid padding, given
/// dilation): out[t] = sum_k x[t + k*dilation] @ w[k] + b.
/// Output length is T - (taps-1)*dilation.
class TemporalConv : public nn::Module {
 public:
  TemporalConv(int64_t d_in, int64_t d_out, int64_t taps, int64_t dilation,
               Rng* rng = nullptr);

  ag::Var Forward(const ag::Var& x) const;

  int64_t out_len(int64_t in_len) const {
    return in_len - (taps_ - 1) * dilation_;
  }

 private:
  int64_t d_in_;
  int64_t d_out_;
  int64_t taps_;
  int64_t dilation_;
  std::vector<ag::Var> taps_w_;
  ag::Var bias_;
};

}  // namespace baselines
}  // namespace stwa

#endif  // STWA_BASELINES_COMMON_H_
