// STSGCN baseline [Song et al., AAAI 2020]: localized spatio-temporal
// synchronous graph convolution. A sandwich adjacency over 3 consecutive
// timestamps (spatial edges in each slice, temporal self-edges between
// slices) lets one graph convolution capture local spatial AND temporal
// dependencies synchronously; cropping keeps the middle slice.

#ifndef STWA_BASELINES_STSGCN_H_
#define STWA_BASELINES_STSGCN_H_

#include <memory>

#include "baselines/common.h"
#include "nn/mlp.h"
#include "train/trainer.h"

namespace stwa {
namespace baselines {

/// Spatial-temporal synchronous graph convolutional forecaster.
class Stsgcn : public train::ForecastModel {
 public:
  explicit Stsgcn(BaselineConfig config, Rng* rng = nullptr);

  ag::Var Forward(const Tensor& x, bool training) override;
  std::string name() const override { return "STSGCN"; }

 private:
  BaselineConfig config_;
  Tensor sandwich_;  // [3N, 3N] localized spatio-temporal adjacency
  std::unique_ptr<nn::Linear> embed_;
  struct Module3 {
    std::unique_ptr<nn::Linear> gc1;
    std::unique_ptr<nn::Linear> gc2;
  };
  std::vector<Module3> modules_;
  int64_t final_len_ = 0;
  std::unique_ptr<nn::Linear> flatten_;
  std::unique_ptr<nn::Mlp> predictor_;
};

}  // namespace baselines
}  // namespace stwa

#endif  // STWA_BASELINES_STSGCN_H_
