#include "baselines/stgcn.h"

#include "common/check.h"

namespace stwa {
namespace baselines {

GatedTemporalConv::GatedTemporalConv(int64_t d_in, int64_t d_out,
                                     int64_t taps, Rng* rng)
    : d_out_(d_out) {
  conv_ = std::make_unique<TemporalConv>(d_in, 2 * d_out, taps,
                                         /*dilation=*/1, rng);
  RegisterModule("conv", conv_.get());
}

ag::Var GatedTemporalConv::Forward(const ag::Var& x) const {
  ag::Var y = conv_->Forward(x);
  ag::Var lin = ag::Slice(y, -1, 0, d_out_);
  ag::Var gate = ag::Slice(y, -1, d_out_, d_out_);
  return ag::Mul(lin, ag::Sigmoid(gate));  // GLU
}

Stgcn::Stgcn(BaselineConfig config, Rng* rng) : config_(config) {
  STWA_CHECK(config_.num_sensors > 0, "Stgcn needs num_sensors");
  STWA_CHECK(!config_.supports.empty(), "Stgcn needs a graph support");
  support_ = config_.supports.front();
  Rng& r = rng != nullptr ? *rng : GlobalRng();
  const int64_t d = config_.d_model;
  int64_t len = config_.history;
  int64_t d_in = config_.features;
  // Keep the temporal kernel small enough that two blocks fit in H.
  const int64_t taps = config_.history >= 12 ? 3 : 2;
  const int64_t blocks = config_.num_layers >= 2 ? 2 : 1;
  for (int64_t l = 0; l < blocks; ++l) {
    Block b;
    b.tconv1 = std::make_unique<GatedTemporalConv>(d_in, d, taps, &r);
    b.gconv = std::make_unique<nn::Linear>(d, d, /*bias=*/true, &r);
    b.tconv2 = std::make_unique<GatedTemporalConv>(d, d, taps, &r);
    RegisterModule("t1_" + std::to_string(l), b.tconv1.get());
    RegisterModule("g_" + std::to_string(l), b.gconv.get());
    RegisterModule("t2_" + std::to_string(l), b.tconv2.get());
    blocks_.push_back(std::move(b));
    len = len - 2 * (taps - 1);
    STWA_CHECK(len >= 1, "STGCN history too short for ", blocks, " blocks");
    d_in = d;
  }
  final_len_ = len;
  flatten_ = std::make_unique<nn::Linear>(len * d, config_.predictor_hidden,
                                          true, &r);
  RegisterModule("flatten", flatten_.get());
  predictor_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{config_.predictor_hidden,
                           config_.predictor_hidden,
                           config_.horizon * config_.features},
      nn::Activation::kRelu, nn::Activation::kNone, &r);
  RegisterModule("predictor", predictor_.get());
}

ag::Var Stgcn::Forward(const Tensor& x, bool /*training*/) {
  STWA_CHECK(x.rank() == 4 && x.dim(1) == config_.num_sensors &&
                 x.dim(2) == config_.history,
             "Stgcn input mismatch: ", ShapeToString(x.shape()));
  const int64_t batch = x.dim(0);
  const int64_t sensors = config_.num_sensors;
  ag::Var h(x);  // [B, N, T, F]
  for (const Block& b : blocks_) {
    h = b.tconv1->Forward(h);  // [B, N, T', d]
    // Graph convolution per timestamp: mix over the sensor axis.
    ag::Var mixed = ag::Permute(h, {0, 2, 1, 3});  // [B, T', N, d]
    mixed = GraphMix(support_, mixed);
    mixed = ag::Relu(b.gconv->Forward(mixed));
    h = ag::Permute(mixed, {0, 2, 1, 3});
    h = b.tconv2->Forward(h);
  }
  ag::Var flat = ag::Reshape(
      h, {batch, sensors, final_len_ * config_.d_model});
  ag::Var pred = predictor_->Forward(ag::Relu(flatten_->Forward(flat)));
  return ag::Reshape(pred, {batch, sensors, config_.horizon,
                            config_.features});
}

}  // namespace baselines
}  // namespace stwa
