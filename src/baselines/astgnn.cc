#include "baselines/astgnn.h"

#include <cmath>

#include "common/check.h"

namespace stwa {
namespace baselines {

Astgnn::Astgnn(BaselineConfig config, Rng* rng) : config_(config) {
  STWA_CHECK(config_.num_sensors > 0, "Astgnn needs num_sensors");
  STWA_CHECK(!config_.supports.empty(), "Astgnn needs a graph support");
  STWA_CHECK(config_.history >= 3, "Astgnn needs history >= 3");
  support_ = config_.supports.front();
  Rng& r = rng != nullptr ? *rng : GlobalRng();
  const int64_t d = config_.d_model;
  embed_ = std::make_unique<nn::Linear>(config_.features, d, true, &r);
  RegisterModule("embed", embed_.get());
  for (int64_t l = 0; l < config_.num_layers; ++l) {
    Block b;
    b.q_conv = std::make_unique<TemporalConv>(d, d, /*taps=*/3, 1, &r);
    b.k_conv = std::make_unique<TemporalConv>(d, d, /*taps=*/3, 1, &r);
    b.v_proj = std::make_unique<nn::Linear>(d, d, false, &r);
    b.gconv = std::make_unique<nn::Linear>(d, d, true, &r);
    RegisterModule("q" + std::to_string(l), b.q_conv.get());
    RegisterModule("k" + std::to_string(l), b.k_conv.get());
    RegisterModule("v" + std::to_string(l), b.v_proj.get());
    RegisterModule("g" + std::to_string(l), b.gconv.get());
    blocks_.push_back(std::move(b));
  }
  flatten_ = std::make_unique<nn::Linear>(
      config_.history * d, config_.predictor_hidden, true, &r);
  RegisterModule("flatten", flatten_.get());
  predictor_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{config_.predictor_hidden,
                           config_.predictor_hidden,
                           config_.horizon * config_.features},
      nn::Activation::kRelu, nn::Activation::kNone, &r);
  RegisterModule("predictor", predictor_.get());
}

ag::Var Astgnn::Forward(const Tensor& x, bool /*training*/) {
  STWA_CHECK(x.rank() == 4 && x.dim(1) == config_.num_sensors &&
                 x.dim(2) == config_.history,
             "Astgnn input mismatch: ", ShapeToString(x.shape()));
  const int64_t batch = x.dim(0);
  const int64_t n = config_.num_sensors;
  const int64_t d = config_.d_model;
  const int64_t steps = config_.history;
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  ag::Var h = embed_->Forward(ag::Var(x));  // [B, N, T, d]
  for (const Block& b : blocks_) {
    // Same-length local-context Q/K: pad by repeating the edge steps so the
    // kernel-3 convolution preserves T.
    ag::Var first = ag::Slice(h, 2, 0, 1);
    ag::Var last = ag::Slice(h, 2, steps - 1, 1);
    ag::Var padded = ag::Concat({first, h, last}, 2);  // [B, N, T+2, d]
    ag::Var q = b.q_conv->Forward(padded);             // [B, N, T, d]
    ag::Var k = b.k_conv->Forward(padded);
    ag::Var v = b.v_proj->Forward(h);
    // Temporal trend-aware attention.
    ag::Var attn = ag::SoftmaxLast(
        ag::MulScalar(ag::MatMul(q, ag::TransposeLast2(k)), scale));
    ag::Var t_out = ag::MatMul(attn, v);  // [B, N, T, d]
    // Spatial graph convolution per step.
    ag::Var mixed = ag::Permute(t_out, {0, 2, 1, 3});  // [B, T, N, d]
    mixed = ag::Relu(b.gconv->Forward(GraphMix(support_, mixed)));
    h = ag::Add(h, ag::Permute(mixed, {0, 2, 1, 3}));  // residual
  }
  ag::Var flat = ag::Reshape(h, {batch, n, steps * d});
  ag::Var pred = predictor_->Forward(ag::Relu(flatten_->Forward(flat)));
  return ag::Reshape(pred, {batch, n, config_.horizon, config_.features});
}

}  // namespace baselines
}  // namespace stwa
