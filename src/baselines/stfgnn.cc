#include "baselines/stfgnn.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "tensor/ops.h"

namespace stwa {
namespace baselines {

Tensor TemporalSimilarityGraph(const Tensor& values, int64_t steps_per_day,
                               int64_t top_k) {
  STWA_CHECK(values.rank() == 3, "expected [N, T, F] values");
  const int64_t n = values.dim(0);
  const int64_t steps = values.dim(1);
  STWA_CHECK(steps >= steps_per_day, "need at least one day of data");
  const int64_t days = steps / steps_per_day;
  // Mean daily profile per sensor (first feature).
  Tensor profile(Shape{n, steps_per_day});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t s = 0; s < steps_per_day; ++s) {
      double acc = 0.0;
      for (int64_t d = 0; d < days; ++d) {
        acc += values({i, d * steps_per_day + s, 0});
      }
      profile({i, s}) = static_cast<float>(acc / days);
    }
  }
  // Normalised correlation between profiles.
  std::vector<double> mean(n, 0.0);
  std::vector<double> norm(n, 0.0);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t s = 0; s < steps_per_day; ++s) mean[i] += profile({i, s});
    mean[i] /= steps_per_day;
    for (int64_t s = 0; s < steps_per_day; ++s) {
      const double c = profile({i, s}) - mean[i];
      norm[i] += c * c;
    }
    norm[i] = std::sqrt(std::max(norm[i], 1e-9));
  }
  Tensor sim(Shape{n, n});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      if (i == j) continue;
      double acc = 0.0;
      for (int64_t s = 0; s < steps_per_day; ++s) {
        acc += (profile({i, s}) - mean[i]) * (profile({j, s}) - mean[j]);
      }
      sim({i, j}) = static_cast<float>(acc / (norm[i] * norm[j]));
    }
  }
  // Keep top_k correlations per sensor as unit edges.
  Tensor graph(Shape{n, n});
  for (int64_t i = 0; i < n; ++i) {
    std::vector<int64_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
      return sim({i, a}) > sim({i, b});
    });
    for (int64_t r = 0; r < std::min(top_k, n); ++r) {
      if (order[r] != i) graph({i, order[r]}) = 1.0f;
    }
  }
  return graph;
}

namespace {

/// Assembles the dense (4N)x(4N) fusion graph: slices 0..3 are consecutive
/// timestamps; diagonal blocks carry the spatial graph, the two middle
/// slices carry the temporal similarity graph, and adjacent slices connect
/// each sensor to itself.
Tensor BuildFusionGraph(const Tensor& spatial, const Tensor& temporal) {
  const int64_t n = spatial.dim(0);
  Tensor a(Shape{4 * n, 4 * n});
  for (int64_t s = 0; s < 4; ++s) {
    const bool middle = s == 1 || s == 2;
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        a({s * n + i, s * n + j}) =
            spatial({i, j}) +
            (middle && !temporal.empty() ? temporal({i, j}) : 0.0f);
      }
      a({s * n + i, s * n + i}) += 1.0f;
      if (s + 1 < 4) {
        a({s * n + i, (s + 1) * n + i}) = 1.0f;
        a({(s + 1) * n + i, s * n + i}) = 1.0f;
      }
    }
  }
  for (int64_t i = 0; i < 4 * n; ++i) {
    float deg = 0.0f;
    for (int64_t j = 0; j < 4 * n; ++j) deg += a({i, j});
    if (deg > 0.0f) {
      for (int64_t j = 0; j < 4 * n; ++j) a({i, j}) /= deg;
    }
  }
  return a;
}

}  // namespace

Stfgnn::Stfgnn(BaselineConfig config, Tensor temporal_graph, Rng* rng)
    : config_(config) {
  STWA_CHECK(config_.num_sensors > 0, "Stfgnn needs num_sensors");
  STWA_CHECK(!config_.supports.empty(), "Stfgnn needs a graph support");
  STWA_CHECK(config_.history >= 7, "Stfgnn needs history >= 7");
  fusion_ = BuildFusionGraph(config_.supports.front(), temporal_graph);
  Rng& r = rng != nullptr ? *rng : GlobalRng();
  const int64_t d = config_.d_model;
  embed_ = std::make_unique<nn::Linear>(config_.features, d, true, &r);
  RegisterModule("embed", embed_.get());
  const int64_t num_blocks = std::min<int64_t>(config_.num_layers,
                                               (config_.history - 1) / 3);
  int64_t len = config_.history;
  for (int64_t m = 0; m < num_blocks; ++m) {
    Block b;
    b.gc = std::make_unique<nn::Linear>(d, d, true, &r);
    b.gate = std::make_unique<nn::Linear>(d, d, true, &r);
    b.tconv_f = std::make_unique<TemporalConv>(d, d, /*taps=*/4, 1, &r);
    b.tconv_g = std::make_unique<TemporalConv>(d, d, /*taps=*/4, 1, &r);
    RegisterModule("gc" + std::to_string(m), b.gc.get());
    RegisterModule("gate" + std::to_string(m), b.gate.get());
    RegisterModule("tf" + std::to_string(m), b.tconv_f.get());
    RegisterModule("tg" + std::to_string(m), b.tconv_g.get());
    blocks_.push_back(std::move(b));
    len -= 3;  // groups of 4 -> T-3 outputs
  }
  final_len_ = len;
  flatten_ = std::make_unique<nn::Linear>(len * d, config_.predictor_hidden,
                                          true, &r);
  RegisterModule("flatten", flatten_.get());
  predictor_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{config_.predictor_hidden,
                           config_.predictor_hidden,
                           config_.horizon * config_.features},
      nn::Activation::kRelu, nn::Activation::kNone, &r);
  RegisterModule("predictor", predictor_.get());
}

ag::Var Stfgnn::Forward(const Tensor& x, bool /*training*/) {
  STWA_CHECK(x.rank() == 4 && x.dim(1) == config_.num_sensors &&
                 x.dim(2) == config_.history,
             "Stfgnn input mismatch: ", ShapeToString(x.shape()));
  const int64_t batch = x.dim(0);
  const int64_t n = config_.num_sensors;
  const int64_t d = config_.d_model;
  ag::Var h = embed_->Forward(ag::Var(x));  // [B, N, T, d]
  for (const Block& b : blocks_) {
    const int64_t len = h.value().dim(2);
    const int64_t out_len = len - 3;
    // Fusion-graph branch: sliding groups of 4 steps over the (4N)^2
    // operator, keeping slice 1 (the "current" step).
    std::vector<ag::Var> fused;
    fused.reserve(out_len);
    for (int64_t t = 0; t < out_len; ++t) {
      ag::Var group = ag::Reshape(
          ag::Permute(ag::Slice(h, 2, t, 4), {0, 2, 1, 3}),
          {batch, 4 * n, d});
      ag::Var g = GraphMix(fusion_, group);
      g = ag::Mul(b.gc->Forward(g), ag::Sigmoid(b.gate->Forward(g)));
      fused.push_back(ag::Slice(g, 1, n, n));  // middle slice
    }
    ag::Var graph_branch =
        ag::Permute(ag::Stack(fused), {1, 2, 0, 3});  // [B, N, T-3, d]
    // Gated convolution branch over the same receptive field.
    ag::Var conv_branch = ag::Mul(ag::Tanh(b.tconv_f->Forward(h)),
                                  ag::Sigmoid(b.tconv_g->Forward(h)));
    h = ag::Add(graph_branch, conv_branch);
  }
  ag::Var flat = ag::Reshape(h, {batch, n, final_len_ * d});
  ag::Var pred = predictor_->Forward(ag::Relu(flatten_->Forward(flat)));
  return ag::Reshape(pred, {batch, n, config_.horizon, config_.features});
}

}  // namespace baselines
}  // namespace stwa
