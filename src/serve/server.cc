#include "serve/server.h"

#include <algorithm>
#include <cstring>
#include <optional>
#include <string>

#include "common/check.h"
#include "runtime/parallel.h"

namespace stwa {
namespace serve {
namespace {

double MicrosBetween(std::chrono::steady_clock::time_point a,
                     std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}

}  // namespace

void ServerStats::Merge(const ServerStats& other) {
  const double batch_requests =
      mean_batch * static_cast<double>(batches) +
      other.mean_batch * static_cast<double>(other.batches);
  submitted += other.submitted;
  completed += other.completed;
  shed += other.shed;
  batches += other.batches;
  protocol_errors += other.protocol_errors;
  mean_batch =
      batches > 0 ? batch_requests / static_cast<double>(batches) : 0.0;
  latency.Merge(other.latency);
  per_worker.Merge(other.per_worker);
  stream_cache.Merge(other.stream_cache);
}

Server::Server(const std::string& checkpoint_path, ServerOptions options)
    : options_(options), queue_(options.batching) {
  STWA_CHECK(options_.workers >= 1, "need at least one worker");
  for (int i = 0; i < options_.workers; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->session = InferenceSession::Open(checkpoint_path,
                                             options_.session);
    workers_.push_back(std::move(worker));
  }
  Start(options_.workers);
}

Server::Server(const std::string& checkpoint_path,
               const data::TrafficDataset& dataset, ServerOptions options)
    : options_(options), queue_(options.batching) {
  STWA_CHECK(options_.workers >= 1, "need at least one worker");
  for (int i = 0; i < options_.workers; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->session = InferenceSession::Open(checkpoint_path, dataset,
                                             options_.session);
    workers_.push_back(std::move(worker));
  }
  Start(options_.workers);
}

void Server::Start(int workers) {
  // Resolve the stream cache before any worker can pop a request. The env
  // gate wins over both the options flag and an injected cache, so
  // STWA_NO_STREAM_CACHE=1 disables the whole path even under the fleet.
  if (options_.stream_cache && StreamCacheEnabled()) {
    if (options_.cache) {
      cache_ = options_.cache;
    } else {
      cache_ = std::make_shared<StreamCache>(options_.generation);
      cache_owner_ = true;
    }
  }
  for (int i = 0; i < workers; ++i) {
    Worker& w = *workers_[i];
    w.thread = std::thread([this, &w] { WorkerLoop(w); });
  }
}

Server::~Server() { Stop(); }

void Server::Stop() {
  if (stopped_) return;
  stopped_ = true;
  queue_.Shutdown();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

std::future<Response> Server::Submit(Tensor window) {
  return Submit(std::move(window), options_.default_deadline);
}

std::future<Response> Server::Submit(
    Tensor window, std::chrono::microseconds deadline_budget) {
  const ServingInfo& inf = info();
  STWA_CHECK(window.rank() == 3 &&
                 window.dim(0) == inf.num_sensors &&
                 window.dim(1) == inf.settings.history &&
                 window.dim(2) == inf.num_features,
             "Submit expects a raw window [", inf.num_sensors, ", ",
             inf.settings.history, ", ", inf.num_features, "], got ",
             ShapeToString(window.shape()));
  return queue_.Submit(std::move(window), deadline_budget);
}

std::future<Response> Server::Submit(Tensor window, int64_t stream_id,
                                     int64_t anchor) {
  const ServingInfo& inf = info();
  STWA_CHECK(window.rank() == 3 &&
                 window.dim(0) == inf.num_sensors &&
                 window.dim(1) == inf.settings.history &&
                 window.dim(2) == inf.num_features,
             "Submit expects a raw window [", inf.num_sensors, ", ",
             inf.settings.history, ", ", inf.num_features, "], got ",
             ShapeToString(window.shape()));
  STWA_CHECK(stream_id >= 0, "stream ids are non-negative, got ",
             stream_id);
  return queue_.Submit(std::move(window), stream_id, anchor,
                       options_.default_deadline);
}

const ServingInfo& Server::info() const {
  return workers_.front()->session->info();
}

void Server::WorkerLoop(Worker& worker) {
  // Fleet shard workers keep their kernels serial: the process-level
  // parallelism is across shards/requests, not inside one small forward.
  std::optional<runtime::ScopedSerialRegion> serial;
  if (options_.serial_kernels) serial.emplace();
  const ServingInfo& inf = worker.session->info();
  const int64_t sample = inf.num_sensors * inf.settings.history *
                         inf.num_features;
  const int64_t out_sample = inf.num_sensors * inf.settings.horizon *
                             inf.num_features;
  // Staging batch reused across iterations per batch size (pooled buffer;
  // re-allocated only when the batch size changes or the previous buffer
  // is still referenced by an in-flight tensor).
  Tensor staging;
  for (;;) {
    std::vector<Request> batch = queue_.NextBatch();
    if (batch.empty()) return;  // shutdown + drained
    const auto exec_start = std::chrono::steady_clock::now();
    const int64_t b = static_cast<int64_t>(batch.size());
    // A stream-tagged request executing alone takes the incremental path;
    // stream requests that ride a larger batch fall back to the stacked
    // forward (still correct — the cache is consulted next time they
    // arrive alone) and are counted as bypasses.
    const bool incremental =
        cache_ != nullptr && b == 1 && batch[0].stream_id >= 0;
    if (!incremental) {
      const Shape batch_shape{b, inf.num_sensors, inf.settings.history,
                              inf.num_features};
      if (staging.shape() != batch_shape || staging.use_count() > 1) {
        staging = Tensor::Uninit(batch_shape);
      }
      for (int64_t i = 0; i < b; ++i) {
        std::memcpy(staging.data() + i * sample, batch[i].window.data(),
                    sizeof(float) * static_cast<size_t>(sample));
        if (cache_ && batch[i].stream_id >= 0) cache_->CountBypass();
      }
    }

    Response failure;
    Tensor out;
    try {
      if (incremental) {
        out = worker.session->ForecastStream(
            batch[0].window, batch[0].stream_id, batch[0].anchor,
            cache_.get(), options_.generation);  // [N, U, F] raw
      } else {
        out = worker.session->Forecast(staging);  // [B, N, U, F] raw
      }
    } catch (const std::exception& e) {
      failure.ok = false;
      failure.error = e.what();
    }
    const auto exec_end = std::chrono::steady_clock::now();
    const double compute_micros = MicrosBetween(exec_start, exec_end);

    for (int64_t i = 0; i < b; ++i) {
      Response resp = failure;
      if (failure.error.empty()) {
        if (incremental) {
          // Already [N, U, F]; hand the tensor over without a copy (cache
          // hits share the cached buffer — safe, responses are read-only).
          resp.forecast = std::move(out);
        } else {
          Tensor forecast = Tensor::Uninit(
              {inf.num_sensors, inf.settings.horizon, inf.num_features});
          std::memcpy(forecast.data(), out.data() + i * out_sample,
                      sizeof(float) * static_cast<size_t>(out_sample));
          resp.forecast = std::move(forecast);
        }
        resp.ok = true;
      }
      resp.queue_micros = MicrosBetween(batch[i].enqueue_time, exec_start);
      resp.compute_micros = compute_micros;
      resp.batch_size = b;
      const double total =
          MicrosBetween(batch[i].enqueue_time, exec_end);
      // Stats before the promise: a caller woken by the future must see
      // its own request already counted in Stats().
      {
        std::lock_guard<std::mutex> lock(worker.stats_mutex);
        if (failure.error.empty()) {
          worker.latency.Record(total);
          ++worker.completed;
        }
      }
      batch[i].promise.set_value(std::move(resp));
    }
    {
      std::lock_guard<std::mutex> lock(worker.stats_mutex);
      ++worker.batches;
      worker.batch_requests += b;
    }
  }
}

ServerStats Server::Stats() const {
  ServerStats stats;
  stats.submitted = queue_.submitted();
  stats.shed = queue_.shed();
  for (size_t i = 0; i < workers_.size(); ++i) {
    const auto& worker = workers_[i];
    std::lock_guard<std::mutex> lock(worker->stats_mutex);
    stats.completed += worker->completed;
    stats.batches += worker->batches;
    stats.mean_batch += static_cast<double>(worker->batch_requests);
    stats.latency.Merge(worker->latency);
    stats.per_worker.Get("w" + std::to_string(i)).Merge(worker->latency);
  }
  stats.mean_batch =
      stats.batches > 0 ? stats.mean_batch / static_cast<double>(
                                                 stats.batches)
                        : 0.0;
  // Only the cache's owner folds its counters — a fleet profile shares
  // one cache across shards and folds it exactly once at profile level.
  if (cache_owner_ && cache_) stats.stream_cache = cache_->Stats();
  return stats;
}

}  // namespace serve
}  // namespace stwa
