// Dynamic micro-batching of concurrent forecast requests.
//
// Producers Submit() a request and get a future; consumers (server worker
// threads) call NextBatch(), which coalesces queued requests into batches
// bounded by max_batch and max_delay: a batch is released as soon as
// max_batch requests are waiting, or when the oldest request has waited
// max_delay, whichever comes first. Overload is handled by shedding, not
// queueing without bound: a Submit beyond `capacity` and any request
// whose deadline expires while still queued are answered immediately with
// `degraded = true` and no forecast. Requests that execute are answered
// with the forecast; batching never changes their bytes (per-sample
// kernel independence, see DESIGN.md "Serving").

#ifndef STWA_SERVE_BATCHING_QUEUE_H_
#define STWA_SERVE_BATCHING_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace stwa {
namespace serve {

/// Outcome of one forecast request.
struct Response {
  /// Forecast [N, U, F] in raw flow units; empty when the request was
  /// shed.
  Tensor forecast;
  /// True when a forecast was produced.
  bool ok = false;
  /// True when the shedding policy affected this response (queue
  /// overflow or deadline expiry before execution).
  bool degraded = false;
  /// Human-readable reason when !ok.
  std::string error;
  /// Time spent queued before execution started (or before shedding).
  double queue_micros = 0.0;
  /// Model time for the batch this request rode in (0 when shed).
  double compute_micros = 0.0;
  /// Number of requests in that batch (0 when shed).
  int64_t batch_size = 0;
};

/// One queued forecast request.
struct Request {
  int64_t id = 0;
  /// Input window [N, H, F], raw scale.
  Tensor window;
  /// Stream identity for incremental serving (serve/stream_cache.h):
  /// stream_id >= 0 marks the request as belonging to a live stream whose
  /// window advances one step per observation; `anchor` is the stream
  /// position of this window (StreamState::anchor()). stream_id < 0 is a
  /// plain one-shot forecast — no cache interaction.
  int64_t stream_id = -1;
  int64_t anchor = -1;
  std::chrono::steady_clock::time_point enqueue_time;
  /// Execution must start before this point or the request is shed.
  std::chrono::steady_clock::time_point deadline;
  std::promise<Response> promise;
};

/// Batching/shedding policy knobs.
struct BatchingOptions {
  /// Largest micro-batch handed to a worker.
  int64_t max_batch = 8;
  /// Longest a request may wait for companions before its batch is
  /// released anyway.
  std::chrono::microseconds max_delay{2000};
  /// Queue bound; Submits beyond it are shed immediately.
  int64_t capacity = 1024;
};

/// Thread-safe request queue with micro-batch assembly and shedding.
class BatchingQueue {
 public:
  explicit BatchingQueue(BatchingOptions options);

  /// Enqueues a request; the future resolves when a worker executes or
  /// sheds it. `deadline_budget` bounds the in-queue wait.
  std::future<Response> Submit(Tensor window,
                               std::chrono::microseconds deadline_budget);

  /// Enqueues a stream request (see Request::stream_id). Identical
  /// batching/shedding semantics; the stream identity rides along so the
  /// executing worker can take the incremental path.
  std::future<Response> Submit(Tensor window, int64_t stream_id,
                               int64_t anchor,
                               std::chrono::microseconds deadline_budget);

  /// Blocks until a batch is ready (per the policy above) and pops it.
  /// Expired requests are shed (their futures resolved) as they are
  /// encountered. Returns an empty vector only after Shutdown() once the
  /// queue has drained.
  std::vector<Request> NextBatch();

  /// Wakes all waiters; NextBatch returns remaining requests, then empty.
  void Shutdown();

  int64_t submitted() const;
  int64_t shed() const;
  int64_t queue_depth() const;

 private:
  /// Resolves `req` as shed with `reason`. Caller holds no promise after.
  void ShedLocked(Request& req, const std::string& reason);

  BatchingOptions options_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Request> queue_;
  bool shutdown_ = false;
  int64_t next_id_ = 0;
  int64_t submitted_ = 0;
  int64_t shed_ = 0;
};

}  // namespace serve
}  // namespace stwa

#endif  // STWA_SERVE_BATCHING_QUEUE_H_
