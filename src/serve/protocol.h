// Line-oriented serving protocol (tools/stwa_serve, stdin or TCP).
//
// Requests, one per line, whitespace-separated:
//   obs v_0 v_1 ... v_{N*F-1}   push one timestep for every sensor
//   obs1 <sensor> v_0 ... v_{F-1}  push one observation for one sensor
//   forecast                    request an H-step forecast
//   stats                       serving statistics
//   quit                        close the connection
//
// Responses, one per line:
//   ok                          observation accepted
//   forecast ok=1 degraded=0 n=<N> u=<U> <N*U*F floats, sensor-major>
//   forecast ok=0 degraded=<0|1> err=<reason-with-underscores>
//   stats submitted=... completed=... shed=... batches=... mean_batch=...
//         p50_us=... p95_us=... p99_us=...   (single line)
//   err <reason>                parse or protocol error
//   bye                         reply to quit
//
// Parsing and formatting are pure functions so they unit-test without
// sockets or threads.

#ifndef STWA_SERVE_PROTOCOL_H_
#define STWA_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "serve/batching_queue.h"
#include "serve/server.h"

namespace stwa {
namespace serve {

/// Parsed request line.
struct Command {
  enum class Kind { kObs, kObsSensor, kForecast, kStats, kQuit, kInvalid };
  Kind kind = Kind::kInvalid;
  /// Sensor index for kObsSensor.
  int64_t sensor = -1;
  /// Observation values for kObs / kObsSensor.
  std::vector<float> values;
  /// Parse failure reason for kInvalid.
  std::string error;
};

/// Parses one request line (leading/trailing whitespace ignored; empty
/// lines and lines starting with '#' parse as kInvalid with an empty
/// error, meaning "skip").
Command ParseCommand(const std::string& line);

/// Formats a forecast response line. `n`/`u`/`f` describe the forecast
/// layout; ignored when the response carries no forecast.
std::string FormatForecastResponse(const Response& response, int64_t n,
                                   int64_t u, int64_t f);

/// Formats the stats line.
std::string FormatStatsResponse(const ServerStats& stats);

/// Formats an error line.
std::string FormatErrorResponse(const std::string& reason);

}  // namespace serve
}  // namespace stwa

#endif  // STWA_SERVE_PROTOCOL_H_
