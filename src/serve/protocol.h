// Line-oriented serving protocol (tools/stwa_serve, stdin or TCP).
//
// Requests, one per line, whitespace-separated:
//   obs v_0 v_1 ... v_{N*F-1}   push one timestep for every sensor
//   obs1 <sensor> v_0 ... v_{F-1}  push one observation for one sensor
//   forecast                    request an H-step forecast
//   stats                       serving statistics
//   quit                        close the connection
//
// Responses, one per line:
//   ok                          observation accepted
//   forecast ok=1 degraded=0 n=<N> u=<U> <N*U*F floats, sensor-major>
//   forecast ok=0 degraded=<0|1> err=<reason-with-underscores>
//   stats submitted=... completed=... shed=... batches=... mean_batch=...
//         protocol_errors=... p50_us=... p95_us=... p99_us=... (single line)
//   err <reason>                parse or protocol error
//   bye                         reply to quit
//
// Parsing and formatting are pure functions so they unit-test without
// sockets or threads. LineSession drives one client's command stream
// against a Server: every malformed line — bad floats, out-of-range
// sensor indices, wrong value counts — is answered with an `err` line and
// counted in the server stats; nothing a client writes can reach a worker
// CHECK.

#ifndef STWA_SERVE_PROTOCOL_H_
#define STWA_SERVE_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "serve/batching_queue.h"
#include "serve/server.h"
#include "serve/stream_state.h"

namespace stwa {
namespace serve {

/// Parsed request line.
struct Command {
  enum class Kind { kObs, kObsSensor, kForecast, kStats, kQuit, kInvalid };
  Kind kind = Kind::kInvalid;
  /// Sensor index for kObsSensor.
  int64_t sensor = -1;
  /// Observation values for kObs / kObsSensor.
  std::vector<float> values;
  /// Parse failure reason for kInvalid.
  std::string error;
};

/// Parses one request line (leading/trailing whitespace ignored; empty
/// lines and lines starting with '#' parse as kInvalid with an empty
/// error, meaning "skip").
Command ParseCommand(const std::string& line);

/// Formats a forecast response line. `n`/`u`/`f` describe the forecast
/// layout; ignored when the response carries no forecast.
std::string FormatForecastResponse(const Response& response, int64_t n,
                                   int64_t u, int64_t f);

/// Formats the stats line.
std::string FormatStatsResponse(const ServerStats& stats);

/// Formats an error line.
std::string FormatErrorResponse(const std::string& reason);

/// Validates a parsed obs/obs1 command against the serving dimensions.
/// Returns the error reason, or nullopt when the command is well-formed.
/// Centralised here so every transport rejects out-of-range sensors and
/// wrong value counts the same way — before any tensor is built.
std::optional<std::string> ValidateCommand(const Command& cmd,
                                           int64_t num_sensors,
                                           int64_t features);

/// One client's protocol state: a StreamState warmed by obs commands plus
/// the response logic for every command. Both stwa_serve transports
/// (stdin and TCP) and the fleet node run one LineSession per connection.
/// Not thread-safe; each connection owns its session.
class LineSession {
 public:
  /// Binds to `server` (not owned; must outlive the session). Stream
  /// dimensions come from the server's checkpoint.
  explicit LineSession(Server& server);

  /// Handles one request line. Returns the response line to write, or
  /// nullopt for blank/comment lines. Sets *quit on the quit command.
  /// Never throws on malformed input — bad lines produce `err` responses
  /// and increment protocol_errors().
  std::optional<std::string> Handle(const std::string& line, bool* quit);

  /// Lines rejected as malformed so far (parse or validation failures).
  int64_t protocol_errors() const { return protocol_errors_; }

  StreamState& state() { return state_; }

  /// Process-unique stream id this session submits under (stream cache
  /// key; see serve/stream_cache.h).
  int64_t stream_id() const { return stream_id_; }

 private:
  Server& server_;
  StreamState state_;
  int64_t stream_id_ = -1;
  int64_t protocol_errors_ = 0;
};

}  // namespace serve
}  // namespace stwa

#endif  // STWA_SERVE_PROTOCOL_H_
