#include "serve/batching_queue.h"

#include <algorithm>

#include "common/check.h"

namespace stwa {
namespace serve {

namespace {

double MicrosSince(std::chrono::steady_clock::time_point since,
                   std::chrono::steady_clock::time_point now) {
  return std::chrono::duration<double, std::micro>(now - since).count();
}

}  // namespace

BatchingQueue::BatchingQueue(BatchingOptions options) : options_(options) {
  STWA_CHECK(options_.max_batch >= 1, "max_batch must be >= 1");
  STWA_CHECK(options_.capacity >= 1, "capacity must be >= 1");
}

void BatchingQueue::ShedLocked(Request& req, const std::string& reason) {
  Response resp;
  resp.ok = false;
  resp.degraded = true;
  resp.error = reason;
  resp.queue_micros =
      MicrosSince(req.enqueue_time, std::chrono::steady_clock::now());
  ++shed_;
  req.promise.set_value(std::move(resp));
}

std::future<Response> BatchingQueue::Submit(
    Tensor window, std::chrono::microseconds deadline_budget) {
  return Submit(std::move(window), /*stream_id=*/-1, /*anchor=*/-1,
                deadline_budget);
}

std::future<Response> BatchingQueue::Submit(
    Tensor window, int64_t stream_id, int64_t anchor,
    std::chrono::microseconds deadline_budget) {
  Request req;
  req.window = std::move(window);
  req.stream_id = stream_id;
  req.anchor = anchor;
  req.enqueue_time = std::chrono::steady_clock::now();
  req.deadline = req.enqueue_time + deadline_budget;
  std::future<Response> future = req.promise.get_future();

  std::lock_guard<std::mutex> lock(mutex_);
  req.id = next_id_++;
  ++submitted_;
  if (shutdown_) {
    ShedLocked(req, "server shutting down");
    return future;
  }
  if (static_cast<int64_t>(queue_.size()) >= options_.capacity) {
    ShedLocked(req, "queue full (capacity " +
                        std::to_string(options_.capacity) + ")");
    return future;
  }
  queue_.push_back(std::move(req));
  cv_.notify_one();
  return future;
}

std::vector<Request> BatchingQueue::NextBatch() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    // Shed every queued request whose deadline already passed: executing
    // it would waste model time the still-live requests need.
    for (auto it = queue_.begin(); it != queue_.end();) {
      if (it->deadline <= now) {
        ShedLocked(*it, "deadline expired after " +
                            std::to_string(static_cast<int64_t>(
                                MicrosSince(it->enqueue_time, now))) +
                            "us in queue");
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
    if (queue_.empty()) {
      if (shutdown_) return {};
      cv_.wait(lock);
      continue;
    }
    const bool full = static_cast<int64_t>(queue_.size()) >=
                      options_.max_batch;
    const auto flush_at = queue_.front().enqueue_time + options_.max_delay;
    if (full || now >= flush_at || shutdown_) {
      const int64_t take = std::min<int64_t>(
          static_cast<int64_t>(queue_.size()), options_.max_batch);
      std::vector<Request> batch;
      batch.reserve(static_cast<size_t>(take));
      for (int64_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      return batch;
    }
    // Wake at whichever edge comes first: the flush point of the oldest
    // request or the earliest deadline (so expiry sheds promptly).
    auto wake_at = flush_at;
    for (const Request& r : queue_) wake_at = std::min(wake_at, r.deadline);
    cv_.wait_until(lock, wake_at);
  }
}

void BatchingQueue::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

int64_t BatchingQueue::submitted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return submitted_;
}

int64_t BatchingQueue::shed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shed_;
}

int64_t BatchingQueue::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int64_t>(queue_.size());
}

}  // namespace serve
}  // namespace stwa
