#include "serve/checkpoint.h"

#include <cstdio>
#include <sstream>

#include "common/check.h"
#include "common/string_util.h"
#include "simd/gemm_lowp.h"

namespace stwa {
namespace serve {
namespace {

/// Metadata key prefix for baked per-channel int8 scales.
constexpr char kInt8ScalePrefix[] = "int8_scale.";

std::string JoinFloats(const std::vector<float>& values) {
  std::string out;
  char buf[32];
  for (size_t i = 0; i < values.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%.9g", static_cast<double>(values[i]));
    if (i > 0) out += ',';
    out += buf;
  }
  return out;
}

std::vector<float> SplitFloats(const std::string& s) {
  std::vector<float> out;
  for (const std::string& part : Split(s, ',')) {
    const std::string t = Trim(part);
    if (t.empty()) continue;
    out.push_back(std::stof(t));
  }
  return out;
}

std::string JoinInts(const std::vector<int64_t>& values) {
  std::ostringstream oss;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) oss << ',';
    oss << values[i];
  }
  return oss.str();
}

std::vector<int64_t> SplitInts(const std::string& s) {
  std::vector<int64_t> out;
  for (const std::string& part : Split(s, ',')) {
    const std::string t = Trim(part);
    if (t.empty()) continue;
    out.push_back(std::stoll(t));
  }
  return out;
}

}  // namespace

nn::CheckpointMeta MakeServingMeta(const ServingInfo& info) {
  nn::CheckpointMeta meta;
  meta.Set("model", info.model);
  meta.SetInt("num_sensors", info.num_sensors);
  meta.SetInt("num_features", info.num_features);
  meta.SetInt("history", info.settings.history);
  meta.SetInt("horizon", info.settings.horizon);
  meta.SetInt("d_model", info.settings.d_model);
  meta.SetInt("num_layers", info.settings.num_layers);
  meta.SetInt("predictor_hidden", info.settings.predictor_hidden);
  meta.Set("window_sizes", JoinInts(info.settings.window_sizes));
  meta.SetInt("proxies", info.settings.proxies);
  meta.SetInt("heads", info.settings.heads);
  meta.SetInt("latent_dim", info.settings.latent_dim);
  meta.SetFloat("kl_weight", info.settings.kl_weight);
  meta.SetInt("seed", static_cast<int64_t>(info.settings.seed));
  meta.SetFloat("scaler_mean", info.scaler_mean);
  meta.SetFloat("scaler_std", info.scaler_std);
  meta.SetInt("ckpt_version", info.ckpt_version);
  return meta;
}

void SaveServingCheckpoint(const nn::Module& module, const ServingInfo& info,
                           const std::string& path) {
  STWA_CHECK(!info.model.empty(), "serving checkpoint needs a model name");
  STWA_CHECK(info.num_sensors > 0, "serving checkpoint needs num_sensors");
  nn::CheckpointMeta meta = MakeServingMeta(info);
  // Bake per-output-channel int8 scales for every rank-2 parameter (the
  // GEMM weights reduced-precision sessions prepack). Computing them at
  // save time pins the quantisation grid in the artifact: any session —
  // or a future build with a different scale heuristic — serves the same
  // int8 model this checkpoint describes.
  for (const auto& [name, var] : module.NamedParameters()) {
    const Tensor& t = var.value();
    if (t.rank() != 2) continue;
    meta.Set(kInt8ScalePrefix + name,
             JoinFloats(simd::Int8ChannelScales(t.data(), t.dim(0), t.dim(1),
                                                /*trans=*/false)));
  }
  nn::SaveParameters(module, path, meta);
}

bool IsServingMeta(const nn::CheckpointMeta& meta) {
  return meta.Has("model") && meta.Has("num_sensors") &&
         meta.Has("scaler_mean");
}

ServingInfo ReadServingInfo(const std::string& path) {
  const nn::CheckpointMeta meta = nn::LoadCheckpointMeta(path);
  STWA_CHECK(IsServingMeta(meta), "'", path,
             "' is a parameter checkpoint without serving metadata; "
             "re-save it with serve::SaveServingCheckpoint");
  ServingInfo info;
  info.model = meta.Get("model");
  info.num_sensors = meta.GetInt("num_sensors");
  info.num_features = meta.GetInt("num_features");
  info.settings.history = meta.GetInt("history");
  info.settings.horizon = meta.GetInt("horizon");
  info.settings.d_model = meta.GetInt("d_model");
  info.settings.num_layers = meta.GetInt("num_layers");
  info.settings.predictor_hidden = meta.GetInt("predictor_hidden");
  info.settings.window_sizes = SplitInts(meta.Get("window_sizes"));
  info.settings.proxies = meta.GetInt("proxies");
  info.settings.heads = meta.GetInt("heads");
  info.settings.latent_dim = meta.GetInt("latent_dim");
  info.settings.kl_weight = meta.GetFloat("kl_weight");
  info.settings.seed = static_cast<uint64_t>(meta.GetInt("seed"));
  info.scaler_mean = meta.GetFloat("scaler_mean");
  info.scaler_std = meta.GetFloat("scaler_std");
  info.ckpt_version = std::stoll(meta.GetOr("ckpt_version", "1"));
  const std::string prefix = kInt8ScalePrefix;
  for (const auto& [key, value] : meta.entries()) {
    if (key.compare(0, prefix.size(), prefix) == 0) {
      info.int8_scales[key.substr(prefix.size())] = SplitFloats(value);
    }
  }
  return info;
}

}  // namespace serve
}  // namespace stwa
