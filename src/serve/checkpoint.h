// Serving checkpoints: a parameter checkpoint (nn/serialize) whose
// metadata blob additionally records everything needed to reconstruct the
// frozen model without the original training program — the registry model
// name, the ModelSettings it was built with, the dataset dimensions and
// the fitted scaler statistics.

#ifndef STWA_SERVE_CHECKPOINT_H_
#define STWA_SERVE_CHECKPOINT_H_

#include <map>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "nn/serialize.h"

namespace stwa {
namespace serve {

/// Everything a server needs to rebuild a frozen model from its file.
struct ServingInfo {
  /// Registry name passed to baselines::MakeModel (e.g. "ST-WA").
  std::string model;
  baselines::ModelSettings settings;
  int64_t num_sensors = 0;
  int64_t num_features = 1;
  /// Fitted z-score statistics; serving normalises inputs and
  /// denormalises forecasts with exactly these.
  float scaler_mean = 0.0f;
  float scaler_std = 1.0f;
  /// Monotone checkpoint version stamped by the producer (a trainer or a
  /// fleet hot-reload pipeline bumps it per re-save). Purely advisory
  /// provenance: serving layers report it (stats lines, bench banners) so
  /// an operator can tell *which* weights answered a request. Pre-existing
  /// files without the entry read back as 1.
  int64_t ckpt_version = 1;
  /// Per-output-channel int8 weight scales baked at save time, keyed by
  /// parameter name (rank-2 parameters only; serialize v3 metadata).
  /// Empty for pre-v3 checkpoints — int8 sessions then recompute the
  /// scales from the loaded fp32 weights, which yields the same values
  /// (the quantiser is deterministic), just without the save-time record.
  std::map<std::string, std::vector<float>> int8_scales;
};

/// Encodes `info` into checkpoint metadata entries.
nn::CheckpointMeta MakeServingMeta(const ServingInfo& info);

/// Saves `module`'s parameters plus the serving metadata to `path`
/// (crash-safe, see nn::SaveParameters).
void SaveServingCheckpoint(const nn::Module& module, const ServingInfo& info,
                           const std::string& path);

/// Reads the serving metadata back from a checkpoint. Throws when the file
/// is not a serving checkpoint (plain parameter checkpoints lack the
/// model entry).
ServingInfo ReadServingInfo(const std::string& path);

/// True when the metadata blob carries serving information.
bool IsServingMeta(const nn::CheckpointMeta& meta);

}  // namespace serve
}  // namespace stwa

#endif  // STWA_SERVE_CHECKPOINT_H_
