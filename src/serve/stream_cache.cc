#include "serve/stream_cache.h"

#include <utility>

#include "common/string_util.h"

namespace stwa {
namespace serve {
namespace {

/// -1 unresolved, 0 disabled, 1 enabled (the ir/plan.cc gate pattern).
int g_stream_cache_mode = -1;

}  // namespace

bool StreamCacheEnabled() {
  if (g_stream_cache_mode < 0) {
    g_stream_cache_mode =
        GetEnvIntOr("STWA_NO_STREAM_CACHE", 0) != 0 ? 0 : 1;
  }
  return g_stream_cache_mode == 1;
}

void SetStreamCacheMode(bool enabled) {
  g_stream_cache_mode = enabled ? 1 : 0;
}

void StreamCacheStats::Merge(const StreamCacheStats& other) {
  output_hits += other.output_hits;
  shift_hits += other.shift_hits;
  misses += other.misses;
  stale_rejected += other.stale_rejected;
  bypass += other.bypass;
  flushes += other.flushes;
  entries += other.entries;
  bytes += other.bytes;
}

int64_t StreamCache::EntryBytes(const Entry& e) const {
  int64_t elems = e.window.size() + e.output.size();
  for (const Tensor& s : e.segments) elems += s.size();
  return elems * static_cast<int64_t>(sizeof(float));
}

bool StreamCache::Lookup(int64_t stream_id, uint64_t generation,
                         simd::Precision precision, Entry* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(stream_id);
  if (it == entries_.end()) return false;
  if (it->second.generation != generation ||
      it->second.precision != precision) {
    ++stats_.stale_rejected;
    return false;
  }
  *out = it->second;
  return true;
}

void StreamCache::Update(int64_t stream_id, Entry entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(stream_id);
  if (it != entries_.end()) {
    stats_.bytes -= EntryBytes(it->second);
    it->second = std::move(entry);
    stats_.bytes += EntryBytes(it->second);
    return;
  }
  stats_.bytes += EntryBytes(entry);
  entries_.emplace(stream_id, std::move(entry));
  stats_.entries = static_cast<int64_t>(entries_.size());
}

void StreamCache::Invalidate(uint64_t new_generation) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  generation_ = new_generation;
  ++stats_.flushes;
  stats_.entries = 0;
  stats_.bytes = 0;
}

uint64_t StreamCache::generation() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return generation_;
}

void StreamCache::CountOutputHit() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.output_hits;
}

void StreamCache::CountShiftHit() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.shift_hits;
}

void StreamCache::CountMiss() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.misses;
}

void StreamCache::CountBypass() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.bypass;
}

StreamCacheStats StreamCache::Stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  StreamCacheStats out = stats_;
  out.entries = static_cast<int64_t>(entries_.size());
  return out;
}

}  // namespace serve
}  // namespace stwa
