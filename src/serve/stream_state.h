// Per-sensor streaming input state.
//
// Serving clients push single observations as they arrive; the stream
// state maintains one ring buffer of the most recent `history` values per
// sensor (the paper's T=12 lookback) so an H-step forecast can be
// requested at any time once every sensor has a full window. Sensors may
// be updated independently (e.g. loop detectors report asynchronously) or
// all at once per timestep.

#ifndef STWA_SERVE_STREAM_STATE_H_
#define STWA_SERVE_STREAM_STATE_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace stwa {
namespace serve {

/// Sliding input window over a live observation stream, raw scale.
class StreamState {
 public:
  StreamState(int64_t num_sensors, int64_t history, int64_t features = 1);

  /// Appends one observation (all `features` values) for a single sensor.
  void PushSensor(int64_t sensor, const float* values);

  /// Appends one timestep for every sensor; `observation` is laid out
  /// [N, F] row-major and must have num_sensors*features entries.
  void Push(const std::vector<float>& observation);

  /// True once every sensor has at least `history` observations.
  bool ready() const;

  /// Smallest per-sensor observation count (warm-up progress).
  int64_t min_filled() const;

  /// Materialises the current window as a [1, N, H, F] tensor (raw
  /// scale, oldest step first). Requires ready().
  Tensor Window() const;

  /// Copies the current window into `out` (same shape contract),
  /// recycling its buffer when possible — the serving hot path.
  void WindowInto(Tensor* out) const;

  int64_t num_sensors() const { return n_; }
  int64_t history() const { return h_; }
  int64_t features() const { return f_; }

  /// Total observations pushed for `sensor` since construction.
  int64_t seen(int64_t sensor) const;

  /// Window anchor: observations every sensor has contributed, uncapped —
  /// advances by one exactly when the whole window shifts by one step.
  /// Consecutive anchors therefore promise W[t][0..H-2] == W[t-1][1..H-1],
  /// which is the stream cache's shift-reuse key (still memcmp-verified).
  int64_t anchor() const;

 private:
  int64_t n_;
  int64_t h_;
  int64_t f_;
  /// Ring storage [N, H, F]; slot (i, head_[i]) is the next write.
  std::vector<float> ring_;
  std::vector<int64_t> head_;
  std::vector<int64_t> seen_;
};

}  // namespace serve
}  // namespace stwa

#endif  // STWA_SERVE_STREAM_STATE_H_
