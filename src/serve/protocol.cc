#include "serve/protocol.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/string_util.h"

namespace stwa {
namespace serve {
namespace {

bool ParseFloatToken(const std::string& token, float* out) {
  char* end = nullptr;
  *out = std::strtof(token.c_str(), &end);
  return end != nullptr && *end == '\0' && !token.empty();
}

bool ParseIntToken(const std::string& token, int64_t* out) {
  char* end = nullptr;
  *out = std::strtoll(token.c_str(), &end, 10);
  return end != nullptr && *end == '\0' && !token.empty();
}

std::string FormatMicros(double micros) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", micros);
  return buf;
}

/// Spaces inside err= values would break token-oriented clients.
std::string Underscored(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    if (c == ' ' || c == '\t' || c == '\n') c = '_';
  }
  return out;
}

}  // namespace

Command ParseCommand(const std::string& line) {
  Command cmd;
  std::vector<std::string> tokens;
  {
    std::istringstream iss(line);
    std::string tok;
    while (iss >> tok) tokens.push_back(tok);
  }
  if (tokens.empty() || tokens[0][0] == '#') {
    return cmd;  // kInvalid with empty error: skip the line
  }
  const std::string& verb = tokens[0];
  if (verb == "obs") {
    cmd.values.reserve(tokens.size() - 1);
    for (size_t i = 1; i < tokens.size(); ++i) {
      float v;
      if (!ParseFloatToken(tokens[i], &v)) {
        cmd.error = "bad value '" + tokens[i] + "'";
        return cmd;
      }
      cmd.values.push_back(v);
    }
    if (cmd.values.empty()) {
      cmd.error = "obs needs at least one value";
      return cmd;
    }
    cmd.kind = Command::Kind::kObs;
    return cmd;
  }
  if (verb == "obs1") {
    if (tokens.size() < 3 || !ParseIntToken(tokens[1], &cmd.sensor)) {
      cmd.error = "usage: obs1 <sensor> <value...>";
      return cmd;
    }
    for (size_t i = 2; i < tokens.size(); ++i) {
      float v;
      if (!ParseFloatToken(tokens[i], &v)) {
        cmd.error = "bad value '" + tokens[i] + "'";
        return cmd;
      }
      cmd.values.push_back(v);
    }
    cmd.kind = Command::Kind::kObsSensor;
    return cmd;
  }
  if (verb == "forecast" && tokens.size() == 1) {
    cmd.kind = Command::Kind::kForecast;
    return cmd;
  }
  if (verb == "stats" && tokens.size() == 1) {
    cmd.kind = Command::Kind::kStats;
    return cmd;
  }
  if (verb == "quit" && tokens.size() == 1) {
    cmd.kind = Command::Kind::kQuit;
    return cmd;
  }
  cmd.error = "unknown command '" + verb + "'";
  return cmd;
}

std::string FormatForecastResponse(const Response& response, int64_t n,
                                   int64_t u, int64_t f) {
  std::ostringstream oss;
  if (!response.ok) {
    oss << "forecast ok=0 degraded=" << (response.degraded ? 1 : 0)
        << " err=" << Underscored(response.error.empty()
                                      ? "unknown"
                                      : response.error);
    return oss.str();
  }
  oss << "forecast ok=1 degraded=" << (response.degraded ? 1 : 0)
      << " n=" << n << " u=" << u;
  char buf[32];
  const float* p = response.forecast.data();
  const int64_t total = n * u * f;
  for (int64_t i = 0; i < total; ++i) {
    // %.9g round-trips binary32 exactly, so piping the protocol output
    // back through strtof reproduces the forecast bytes.
    std::snprintf(buf, sizeof(buf), "%.9g", static_cast<double>(p[i]));
    oss << ' ' << buf;
  }
  return oss.str();
}

std::string FormatStatsResponse(const ServerStats& stats) {
  std::ostringstream oss;
  oss << "stats submitted=" << stats.submitted
      << " completed=" << stats.completed << " shed=" << stats.shed
      << " batches=" << stats.batches << " mean_batch="
      << FormatFloat(stats.mean_batch, 2)
      << " protocol_errors=" << stats.protocol_errors
      << " p50_us=" << FormatMicros(stats.latency.p50())
      << " p95_us=" << FormatMicros(stats.latency.p95())
      << " p99_us=" << FormatMicros(stats.latency.p99())
      << " sc_output_hits=" << stats.stream_cache.output_hits
      << " sc_shift_hits=" << stats.stream_cache.shift_hits
      << " sc_misses=" << stats.stream_cache.misses
      << " sc_stale=" << stats.stream_cache.stale_rejected
      << " sc_bypass=" << stats.stream_cache.bypass
      << " sc_flushes=" << stats.stream_cache.flushes
      << " sc_entries=" << stats.stream_cache.entries
      << " sc_bytes=" << stats.stream_cache.bytes;
  return oss.str();
}

std::string FormatErrorResponse(const std::string& reason) {
  return "err " + Underscored(reason);
}

std::optional<std::string> ValidateCommand(const Command& cmd,
                                           int64_t num_sensors,
                                           int64_t features) {
  switch (cmd.kind) {
    case Command::Kind::kObs:
      if (static_cast<int64_t>(cmd.values.size()) !=
          num_sensors * features) {
        return "obs needs " + std::to_string(num_sensors * features) +
               " values, got " + std::to_string(cmd.values.size());
      }
      return std::nullopt;
    case Command::Kind::kObsSensor:
      if (cmd.sensor < 0 || cmd.sensor >= num_sensors) {
        return "sensor " + std::to_string(cmd.sensor) +
               " out of range [0, " + std::to_string(num_sensors) + ")";
      }
      if (static_cast<int64_t>(cmd.values.size()) != features) {
        return "obs1 needs " + std::to_string(features) + " value(s), got " +
               std::to_string(cmd.values.size());
      }
      return std::nullopt;
    default:
      return std::nullopt;
  }
}

namespace {
/// Process-unique stream ids: two concurrent connections must never write
/// the same cache slot.
std::atomic<int64_t> g_next_stream_id{0};
}  // namespace

LineSession::LineSession(Server& server)
    : server_(server),
      state_(server.info().num_sensors, server.info().settings.history,
             server.info().num_features),
      stream_id_(g_next_stream_id.fetch_add(1)) {}

std::optional<std::string> LineSession::Handle(const std::string& line,
                                               bool* quit) {
  const ServingInfo& info = server_.info();
  Command cmd = ParseCommand(line);
  if (cmd.kind == Command::Kind::kInvalid) {
    if (cmd.error.empty()) return std::nullopt;  // blank/comment
    ++protocol_errors_;
    return FormatErrorResponse(cmd.error);
  }
  if (auto invalid =
          ValidateCommand(cmd, state_.num_sensors(), state_.features())) {
    ++protocol_errors_;
    return FormatErrorResponse(*invalid);
  }
  switch (cmd.kind) {
    case Command::Kind::kObs:
      state_.Push(cmd.values);
      return "ok";
    case Command::Kind::kObsSensor:
      state_.PushSensor(cmd.sensor, cmd.values.data());
      return "ok";
    case Command::Kind::kForecast: {
      if (!state_.ready()) {
        return "forecast ok=0 degraded=0 err=warming_up_have_" +
               std::to_string(state_.min_filled()) + "_of_" +
               std::to_string(state_.history());
      }
      Tensor window = state_.Window().Reshape(
          {state_.num_sensors(), state_.history(), state_.features()});
      // Stream-tagged submit: consecutive forecasts from this connection
      // advance one observation at a time, the exact shape the stream
      // cache reuses. Falls back transparently when the cache is off.
      Response resp =
          server_.Submit(std::move(window), stream_id_, state_.anchor())
              .get();
      return FormatForecastResponse(resp, info.num_sensors,
                                    info.settings.horizon,
                                    info.num_features);
    }
    case Command::Kind::kStats: {
      ServerStats stats = server_.Stats();
      stats.protocol_errors = protocol_errors_;
      return FormatStatsResponse(stats);
    }
    case Command::Kind::kQuit:
      *quit = true;
      return "bye";
    case Command::Kind::kInvalid:
      break;  // handled above
  }
  return std::nullopt;
}

}  // namespace serve
}  // namespace stwa
