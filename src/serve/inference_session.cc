#include "serve/inference_session.h"

#include <algorithm>
#include <utility>

#include "autograd/no_grad.h"
#include "common/check.h"
#include "simd/gemm_lowp.h"
#include "tensor/lowp_cache.h"

namespace stwa {
namespace serve {

bool DatasetFreeModel(const std::string& name) {
  static const char* kNames[] = {"ST-WA", "S-WA",   "WA",    "WA-1",
                                 "Det-ST-WA", "ST-WA-mean", "GRU",
                                 "GRU+S", "GRU+ST", "ATT",   "SA",
                                 "ATT+S", "ATT+ST"};
  for (const char* n : kNames) {
    if (name == n) return true;
  }
  return false;
}

data::TrafficDataset StubDataset(const ServingInfo& info) {
  data::TrafficDataset dataset;
  dataset.name = "serving-stub";
  dataset.values =
      Tensor(Shape{info.num_sensors, 1, info.num_features});
  return dataset;
}

InferenceSession::InferenceSession(
    ServingInfo info, std::unique_ptr<train::ForecastModel> model,
    SessionConfig config)
    : info_(std::move(info)),
      scaler_(info_.scaler_mean, info_.scaler_std),
      model_(std::move(model)),
      config_(config),
      modes_(ir::SnapshotPlanModes()) {
  RegisterLowpWeights();
}

InferenceSession::~InferenceSession() {
  for (const float* key : lowp_keys_) lowp::Unregister(key);
}

void InferenceSession::RegisterLowpWeights() {
  if (config_.precision == simd::Precision::kFp32) return;
  for (const auto& [name, var] : model_->NamedParameters()) {
    const Tensor& t = var.value();
    if (t.rank() != 2) continue;
    const int64_t k = t.dim(0);
    const int64_t n = t.dim(1);
    if (k > (int64_t{1} << 16)) continue;  // outside the exact-i32 window
    const std::vector<float>* scales = nullptr;
    if (config_.precision == simd::Precision::kInt8) {
      const auto it = info_.int8_scales.find(name);
      if (it != info_.int8_scales.end()) {
        STWA_CHECK(static_cast<int64_t>(it->second.size()) == n,
                   "checkpoint bakes ", it->second.size(),
                   " int8 scales for '", name, "' but the parameter has ",
                   n, " output channels — the file is inconsistent");
        scales = &it->second;
      }
    }
    lowp::Register(t.data(),
                   simd::PackWeights(t.data(), k, n, /*trans=*/false,
                                     config_.precision, scales,
                                     /*bf16_trunc=*/false));
    lowp_keys_.push_back(t.data());
  }
}

std::unique_ptr<InferenceSession> InferenceSession::Open(
    const std::string& path, const SessionConfig& config) {
  ServingInfo info = ReadServingInfo(path);
  STWA_CHECK(DatasetFreeModel(info.model), "model '", info.model,
             "' needs its training dataset to rebuild graph supports; "
             "use InferenceSession::Open(path, dataset)");
  auto model =
      baselines::MakeModel(info.model, StubDataset(info), info.settings);
  nn::LoadParameters(*model, path);
  return std::unique_ptr<InferenceSession>(
      new InferenceSession(std::move(info), std::move(model), config));
}

std::unique_ptr<InferenceSession> InferenceSession::Open(
    const std::string& path, const data::TrafficDataset& dataset,
    const SessionConfig& config) {
  ServingInfo info = ReadServingInfo(path);
  STWA_CHECK(dataset.num_sensors() == info.num_sensors,
             "checkpoint expects ", info.num_sensors, " sensors, dataset has ",
             dataset.num_sensors());
  auto model = baselines::MakeModel(info.model, dataset, info.settings);
  nn::LoadParameters(*model, path);
  return std::unique_ptr<InferenceSession>(
      new InferenceSession(std::move(info), std::move(model), config));
}

Tensor InferenceSession::Forecast(const Tensor& raw_window) {
  const bool batched = raw_window.rank() == 4;
  STWA_CHECK(batched || raw_window.rank() == 3,
             "Forecast expects [B, N, H, F] or [N, H, F], got ",
             ShapeToString(raw_window.shape()));
  const int64_t n = info_.num_sensors;
  const int64_t h = info_.settings.history;
  const int64_t f = info_.num_features;
  Tensor window = batched
                      ? raw_window
                      : raw_window.Reshape({1, raw_window.dim(0),
                                            raw_window.dim(1),
                                            raw_window.dim(2)});
  STWA_CHECK(window.dim(1) == n && window.dim(2) == h && window.dim(3) == f,
             "window shape ", ShapeToString(raw_window.shape()),
             " does not match the checkpoint's [*, ", n, ", ", h, ", ", f,
             "]");

  // Inference-only: no gradient bookkeeping anywhere in the pass.
  ag::NoGradMode no_grad;
  Tensor normalised = scaler_.Transform(window);
  Tensor pred_value;
  const int64_t batch = window.dim(0);
  // One snapshot (taken at session construction) gates both the lookup and
  // the capture: a global toggle between two calls can neither orphan a
  // cached plan nor capture into a session opened with plans off.
  auto it = modes_.plan ? plans_.find(batch) : plans_.end();
  if (modes_.plan && it == plans_.end()) {
    // First request at this batch size: trace eagerly while recording and
    // freeze a forward-only plan for every later request.
    ir::GraphCapture capture(modes_);
    ag::Var pred = model_->Forward(normalised, /*training=*/false);
    STWA_CHECK(!pred.node()->requires_grad,
               "InferenceSession forward built gradient state under "
               "NoGradMode");
    pred_value = pred.value();
    plans_.emplace(batch, capture.Finish(pred, {normalised},
                                         /*with_backward=*/false));
  } else if (it != plans_.end() && it->second != nullptr) {
    pred_value = it->second->ReplayForward({normalised});
  } else {
    ag::Var pred = model_->Forward(normalised, /*training=*/false);
    // The NoGradMode contract: every op result is a detached constant. A
    // violation here means some op bypassed the recording switch and the
    // session is silently paying autograd costs — fail loudly instead.
    STWA_CHECK(!pred.node()->requires_grad && pred.node()->parents.empty(),
               "InferenceSession forward built autograd state under "
               "NoGradMode");
    pred_value = pred.value();
  }
  ++forward_count_;
  Tensor out = scaler_.InverseTransform(pred_value);
  if (!batched) {
    out = out.Reshape({out.dim(1), out.dim(2), out.dim(3)});
  }
  return out;
}

}  // namespace serve
}  // namespace stwa
