#include "serve/inference_session.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "autograd/no_grad.h"
#include "common/check.h"
#include "simd/gemm_lowp.h"
#include "tensor/lowp_cache.h"

namespace stwa {
namespace serve {
namespace {

/// Private copy of a window tensor — cache keys must never alias
/// caller-mutable staging.
Tensor CopyTensor(const Tensor& t) {
  Tensor c = Tensor::Uninit(t.shape());
  c.CopyDataFrom(t);
  return c;
}

}  // namespace

bool DatasetFreeModel(const std::string& name) {
  static const char* kNames[] = {"ST-WA", "S-WA",   "WA",    "WA-1",
                                 "Det-ST-WA", "ST-WA-mean", "GRU",
                                 "GRU+S", "GRU+ST", "ATT",   "SA",
                                 "ATT+S", "ATT+ST"};
  for (const char* n : kNames) {
    if (name == n) return true;
  }
  return false;
}

data::TrafficDataset StubDataset(const ServingInfo& info) {
  data::TrafficDataset dataset;
  dataset.name = "serving-stub";
  dataset.values =
      Tensor(Shape{info.num_sensors, 1, info.num_features});
  return dataset;
}

InferenceSession::InferenceSession(
    ServingInfo info, std::unique_ptr<train::ForecastModel> model,
    SessionConfig config)
    : info_(std::move(info)),
      scaler_(info_.scaler_mean, info_.scaler_std),
      model_(std::move(model)),
      config_(config),
      modes_(ir::SnapshotPlanModes()) {
  RegisterLowpWeights();
}

InferenceSession::~InferenceSession() {
  for (const float* key : lowp_keys_) lowp::Unregister(key);
}

void InferenceSession::RegisterLowpWeights() {
  if (config_.precision == simd::Precision::kFp32) return;
  for (const auto& [name, var] : model_->NamedParameters()) {
    const Tensor& t = var.value();
    if (t.rank() != 2) continue;
    const int64_t k = t.dim(0);
    const int64_t n = t.dim(1);
    if (k > (int64_t{1} << 16)) continue;  // outside the exact-i32 window
    const std::vector<float>* scales = nullptr;
    if (config_.precision == simd::Precision::kInt8) {
      const auto it = info_.int8_scales.find(name);
      if (it != info_.int8_scales.end()) {
        STWA_CHECK(static_cast<int64_t>(it->second.size()) == n,
                   "checkpoint bakes ", it->second.size(),
                   " int8 scales for '", name, "' but the parameter has ",
                   n, " output channels — the file is inconsistent");
        scales = &it->second;
      }
    }
    lowp::Register(t.data(),
                   simd::PackWeights(t.data(), k, n, /*trans=*/false,
                                     config_.precision, scales,
                                     /*bf16_trunc=*/false));
    lowp_keys_.push_back(t.data());
  }
}

std::unique_ptr<InferenceSession> InferenceSession::Open(
    const std::string& path, const SessionConfig& config) {
  ServingInfo info = ReadServingInfo(path);
  STWA_CHECK(DatasetFreeModel(info.model), "model '", info.model,
             "' needs its training dataset to rebuild graph supports; "
             "use InferenceSession::Open(path, dataset)");
  auto model =
      baselines::MakeModel(info.model, StubDataset(info), info.settings);
  nn::LoadParameters(*model, path);
  return std::unique_ptr<InferenceSession>(
      new InferenceSession(std::move(info), std::move(model), config));
}

std::unique_ptr<InferenceSession> InferenceSession::Open(
    const std::string& path, const data::TrafficDataset& dataset,
    const SessionConfig& config) {
  ServingInfo info = ReadServingInfo(path);
  STWA_CHECK(dataset.num_sensors() == info.num_sensors,
             "checkpoint expects ", info.num_sensors, " sensors, dataset has ",
             dataset.num_sensors());
  auto model = baselines::MakeModel(info.model, dataset, info.settings);
  nn::LoadParameters(*model, path);
  return std::unique_ptr<InferenceSession>(
      new InferenceSession(std::move(info), std::move(model), config));
}

Tensor InferenceSession::Forecast(const Tensor& raw_window) {
  const bool batched = raw_window.rank() == 4;
  STWA_CHECK(batched || raw_window.rank() == 3,
             "Forecast expects [B, N, H, F] or [N, H, F], got ",
             ShapeToString(raw_window.shape()));
  const int64_t n = info_.num_sensors;
  const int64_t h = info_.settings.history;
  const int64_t f = info_.num_features;
  Tensor window = batched
                      ? raw_window
                      : raw_window.Reshape({1, raw_window.dim(0),
                                            raw_window.dim(1),
                                            raw_window.dim(2)});
  STWA_CHECK(window.dim(1) == n && window.dim(2) == h && window.dim(3) == f,
             "window shape ", ShapeToString(raw_window.shape()),
             " does not match the checkpoint's [*, ", n, ", ", h, ", ", f,
             "]");

  // Inference-only: no gradient bookkeeping anywhere in the pass.
  ag::NoGradMode no_grad;
  Tensor pred_value;
  const int64_t batch = window.dim(0);
  // One snapshot (taken at session construction) gates both the lookup and
  // the capture: a global toggle between two calls can neither orphan a
  // cached plan nor capture into a session opened with plans off.
  auto it = modes_.plan ? plans_.find(batch) : plans_.end();
  if (modes_.plan && it == plans_.end()) {
    // First request at this batch size: trace eagerly while recording and
    // freeze a forward-only plan for every later request. The feed is a
    // fresh transform (not staging): the captured leaf pins its buffer
    // for the plan's lifetime.
    Tensor normalised = scaler_.Transform(window);
    ir::GraphCapture capture(modes_);
    ag::Var pred = model_->Forward(normalised, /*training=*/false);
    STWA_CHECK(!pred.node()->requires_grad,
               "InferenceSession forward built gradient state under "
               "NoGradMode");
    pred_value = pred.value();
    std::unique_ptr<ir::ExecutionPlan> plan =
        capture.Finish(pred, {normalised}, /*with_backward=*/false);
    if (batch == 1 && !stream_.analyzed) AnalyzeStreamPlan(plan.get());
    plans_.emplace(batch, std::move(plan));
  } else if (it != plans_.end() && it->second != nullptr) {
    scaler_.TransformInto(window, &norm_staging_);
    pred_value = it->second->ReplayForward({norm_staging_});
  } else {
    Tensor normalised = scaler_.Transform(window);
    ag::Var pred = model_->Forward(normalised, /*training=*/false);
    // The NoGradMode contract: every op result is a detached constant. A
    // violation here means some op bypassed the recording switch and the
    // session is silently paying autograd costs — fail loudly instead.
    STWA_CHECK(!pred.node()->requires_grad && pred.node()->parents.empty(),
               "InferenceSession forward built autograd state under "
               "NoGradMode");
    pred_value = pred.value();
  }
  ++forward_count_;
  scaler_.InverseTransformInto(pred_value, &out_staging_);
  Tensor out = out_staging_;
  if (!batched) {
    out = out.Reshape({out.dim(1), out.dim(2), out.dim(3)});
  }
  return out;
}

void InferenceSession::AnalyzeStreamPlan(ir::ExecutionPlan* plan) {
  stream_.analyzed = true;
  if (plan == nullptr) return;
  // Feed layout is [B, N, H, F]: the window (time) axis is 2.
  stream_.info = ir::AnalyzeTimeSlice(*plan, /*feed_index=*/0,
                                      /*time_axis=*/2);
  if (!stream_.info.feasible) return;
  stream_.columns = std::make_unique<ir::ColumnProgram>(*plan, stream_.info,
                                                        /*feed_index=*/0);
  if (!stream_.columns->ok()) {
    stream_.columns.reset();
    stream_.info.feasible = false;
    return;
  }
  plan->RetainValues(stream_.info.retain_nodes);
  const std::vector<ag::Node*>& steps = plan->forward_steps();
  stream_.frontier_shapes.clear();
  for (size_t i : stream_.info.frontier_steps) {
    stream_.frontier_shapes.push_back(steps[i]->value.shape());
  }
  stream_.all_mask.assign(steps.size(), 1);
  // The capture trace just computed every step, and retention keeps the
  // invariant values resident from here on.
  stream_.invariant_warm = true;
}

Tensor InferenceSession::ForecastStream(const Tensor& raw_window,
                                        int64_t stream_id, int64_t anchor,
                                        StreamCache* cache,
                                        uint64_t generation) {
  if (cache == nullptr || !modes_.plan || stream_id < 0) {
    if (cache != nullptr) cache->CountBypass();
    return Forecast(raw_window);
  }
  const bool batched = raw_window.rank() == 4;
  STWA_CHECK(batched || raw_window.rank() == 3,
             "ForecastStream expects [1, N, H, F] or [N, H, F], got ",
             ShapeToString(raw_window.shape()));
  const int64_t n = info_.num_sensors;
  const int64_t h = info_.settings.history;
  const int64_t f = info_.num_features;
  Tensor window = batched
                      ? raw_window
                      : raw_window.Reshape({1, raw_window.dim(0),
                                            raw_window.dim(1),
                                            raw_window.dim(2)});
  STWA_CHECK(window.dim(0) == 1 && window.dim(1) == n && window.dim(2) == h &&
                 window.dim(3) == f,
             "stream window shape ", ShapeToString(raw_window.shape()),
             " does not match the checkpoint's [1, ", n, ", ", h, ", ", f,
             "]");

  ag::NoGradMode no_grad;
  auto unbatch = [&](Tensor t) {
    return t.Reshape({t.dim(1), t.dim(2), t.dim(3)});
  };
  auto rebatch = [&](Tensor t) {
    return t.Reshape({1, t.dim(0), t.dim(1), t.dim(2)});
  };

  auto it = plans_.find(1);
  if (it == plans_.end()) {
    // First single-window request of this session: capture the plan, run
    // the time-slice analysis while the traced values are live, and
    // harvest those values as this stream's first cache entry — the trace
    // itself was a valid cold compute for this window.
    Tensor normalised = scaler_.Transform(window);
    ir::GraphCapture capture(modes_);
    ag::Var pred = model_->Forward(normalised, /*training=*/false);
    STWA_CHECK(!pred.node()->requires_grad,
               "InferenceSession forward built gradient state under "
               "NoGradMode");
    Tensor pred_value = pred.value();
    std::unique_ptr<ir::ExecutionPlan> plan =
        capture.Finish(pred, {normalised}, /*with_backward=*/false);
    ir::ExecutionPlan* p = plan.get();
    if (!stream_.analyzed) AnalyzeStreamPlan(p);
    plans_.emplace(1, std::move(plan));
    ++forward_count_;
    scaler_.InverseTransformInto(pred_value, &out_staging_);
    Tensor out = unbatch(out_staging_);
    if (p == nullptr || stream_.info.has_rng) {
      cache->CountBypass();
    } else {
      StreamCache::Entry e;
      e.anchor = anchor;
      e.generation = generation;
      e.precision = config_.precision;
      e.window = CopyTensor(window);
      e.output = out;
      if (stream_.info.feasible) {
        // Copied, not referenced: a frontier value can be a view of the
        // feed buffer (reshape), and BindFeeds memcpys the next replay's
        // window into that buffer in place — an aliased segment would be
        // silently rewritten by whichever stream replays next.
        const std::vector<ag::Node*>& steps = p->forward_steps();
        for (size_t i : stream_.info.frontier_steps) {
          e.segments.push_back(CopyTensor(steps[i]->value));
        }
      }
      cache->Update(stream_id, std::move(e));
      cache->CountMiss();
    }
    return batched ? rebatch(out) : out;
  }

  ir::ExecutionPlan* plan = it->second.get();
  if (plan == nullptr) {
    cache->CountBypass();
    return Forecast(raw_window);
  }
  // Plan created before any stream traffic (a plain Forecast): the
  // analysis runs now, but replays have already released the capture
  // values, so it degrades to output memoisation only.
  if (!stream_.analyzed) AnalyzeStreamPlan(plan);
  if (stream_.info.has_rng) {
    cache->CountBypass();
    return Forecast(raw_window);
  }

  StreamCache::Entry entry;
  const bool have =
      cache->Lookup(stream_id, generation, config_.precision, &entry);

  // Output hit: the same window answered before — anchor routes, bytes
  // decide.
  if (have && entry.anchor == anchor &&
      entry.window.size() == window.size() &&
      std::memcmp(entry.window.data(), window.data(),
                  static_cast<size_t>(window.size()) * sizeof(float)) == 0) {
    cache->CountOutputHit();
    Tensor out = entry.output;
    return batched ? rebatch(out) : out;
  }

  // Shift path: one step ahead of the entry, overlapping columns byte-
  // equal, segments shaped as this plan expects.
  bool shiftable = have && stream_.info.feasible && stream_.invariant_warm &&
                   entry.anchor + 1 == anchor &&
                   entry.window.shape() == window.shape() &&
                   entry.segments.size() == stream_.frontier_shapes.size() &&
                   !entry.segments.empty();
  for (size_t k = 0; shiftable && k < entry.segments.size(); ++k) {
    if (entry.segments[k].shape() != stream_.frontier_shapes[k]) {
      shiftable = false;
    }
  }
  if (shiftable) {
    const float* prev = entry.window.data();
    const float* cur = window.data();
    const int64_t sensor_block = h * f;
    bool overlap = true;
    for (int64_t s = 0; s < n && overlap; ++s) {
      overlap = std::memcmp(
                    prev + s * sensor_block + f, cur + s * sensor_block,
                    static_cast<size_t>((h - 1) * f) * sizeof(float)) == 0;
    }
    if (overlap) {
      scaler_.TransformInto(window, &norm_staging_);
      // Newest normalised column -> the sliced segment's shadow graph.
      Tensor feed_col = ir::SliceTimeColumn(norm_staging_, 2, h - 1);
      stream_.columns->Run(feed_col);
      // Splice each frontier value forward by one step and hand it to the
      // plan node, then replay only the window-global tail.
      const std::vector<ag::Node*>& steps = plan->forward_steps();
      for (size_t k = 0; k < stream_.info.frontier_steps.size(); ++k) {
        const size_t si = stream_.info.frontier_steps[k];
        Tensor seg = ir::ShiftAppendColumn(entry.segments[k],
                                           stream_.columns->FrontierColumn(k),
                                           stream_.info.step_axis[si]);
        steps[si]->value = seg;
        entry.segments[k] = std::move(seg);
      }
      Tensor pred_value =
          plan->ReplayForwardMasked({norm_staging_}, stream_.info.global_mask);
      ++forward_count_;
      scaler_.InverseTransformInto(pred_value, &out_staging_);
      Tensor out = unbatch(out_staging_);
      entry.anchor = anchor;
      entry.window = CopyTensor(window);
      entry.output = out;
      cache->Update(stream_id, std::move(entry));
      cache->CountShiftHit();
      return batched ? rebatch(out) : out;
    }
  }

  // Miss: full compute (window-invariant steps still skipped when the
  // analysis proved them) and refresh the entry.
  scaler_.TransformInto(window, &norm_staging_);
  Tensor pred_value;
  if (stream_.info.feasible) {
    const std::vector<uint8_t>& mask = stream_.invariant_warm
                                           ? stream_.info.non_invariant_mask
                                           : stream_.all_mask;
    pred_value = plan->ReplayForwardMasked({norm_staging_}, mask);
    stream_.invariant_warm = true;
  } else {
    pred_value = plan->ReplayForward({norm_staging_});
  }
  ++forward_count_;
  scaler_.InverseTransformInto(pred_value, &out_staging_);
  Tensor out = unbatch(out_staging_);
  StreamCache::Entry fresh;
  fresh.anchor = anchor;
  fresh.generation = generation;
  fresh.precision = config_.precision;
  fresh.window = CopyTensor(window);
  fresh.output = out;
  if (stream_.info.feasible) {
    // Copied for the same reason as the capture harvest above: frontier
    // views of the feed buffer are rewritten in place by the next
    // BindFeeds.
    const std::vector<ag::Node*>& steps = plan->forward_steps();
    for (size_t i : stream_.info.frontier_steps) {
      fresh.segments.push_back(CopyTensor(steps[i]->value));
    }
  }
  cache->Update(stream_id, std::move(fresh));
  cache->CountMiss();
  return batched ? rebatch(out) : out;
}

}  // namespace serve
}  // namespace stwa
