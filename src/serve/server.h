// Batched low-latency forecast server.
//
// N worker threads sit behind one BatchingQueue. Each worker owns a
// private InferenceSession opened from the same checkpoint (identical
// weights, no shared mutable model state), pops a micro-batch, stacks the
// request windows into one [B, N, H, F] tensor, runs a single forward
// pass on the shared execution runtime (src/runtime), and resolves each
// request's future with its row of the output. Because every kernel in
// the library computes each output element from one sample's data in a
// fixed order, a request's forecast bytes are independent of the batch it
// rode in, the worker that ran it, and the thread count — see DESIGN.md
// "Serving" for the determinism argument.

#ifndef STWA_SERVE_SERVER_H_
#define STWA_SERVE_SERVER_H_

#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "metrics/latency.h"
#include "serve/batching_queue.h"
#include "serve/inference_session.h"
#include "serve/stream_cache.h"

namespace stwa {
namespace serve {

/// Server configuration.
struct ServerOptions {
  /// Worker threads (each with a private model replica).
  int workers = 1;
  BatchingOptions batching;
  /// Per-worker session configuration (precision tier etc.). Every
  /// worker session is opened with the same config, so responses stay
  /// worker-independent.
  SessionConfig session;
  /// Default in-queue deadline for Submit() without an explicit budget.
  std::chrono::microseconds default_deadline{1'000'000};
  /// When true, worker threads run their model kernels serially
  /// (runtime::ScopedSerialRegion): the fleet layer runs many shard
  /// servers in one process and parallelises across requests, so the
  /// per-kernel pool dispatch is pure contention there. Outputs are
  /// bit-identical either way (ParallelFor determinism contract).
  bool serial_kernels = false;
  /// Per-stream activation cache for incremental streaming inference
  /// (serve/stream_cache.h). When enabled, stream-tagged Submits that
  /// execute as singleton batches take InferenceSession::ForecastStream —
  /// byte-identical to the cold path, memcmp-enforced. STWA_NO_STREAM_CACHE=1
  /// wins over this flag.
  bool stream_cache = true;
  /// Externally owned cache (the fleet layer shares one cache across a
  /// profile's shards and reload generations). Null + stream_cache on:
  /// the server creates and owns a private cache, and folds its stats
  /// into Stats(). Non-null: the owner folds stats itself.
  std::shared_ptr<StreamCache> cache;
  /// Weights generation this server serves (tags cache entries; the fleet
  /// layer passes the model version so reloads never read stale entries).
  uint64_t generation = 1;
};

/// Aggregated serving statistics.
struct ServerStats {
  int64_t submitted = 0;
  int64_t completed = 0;
  int64_t shed = 0;
  int64_t batches = 0;
  /// Malformed client lines rejected before reaching a worker (counted by
  /// the transport's LineSession, not by the server core).
  int64_t protocol_errors = 0;
  /// Mean executed batch size (0 when no batch ran yet).
  double mean_batch = 0.0;
  /// End-to-end latency (submit -> response) of completed requests.
  metrics::LatencyHistogram latency;
  /// The same completions keyed per worker ("w0", "w1", ...) — per-worker
  /// percentiles from one mergeable struct.
  metrics::LabeledHistograms per_worker;
  /// Stream-cache counters (zeros when the cache is off or owned
  /// elsewhere — the owner folds them exactly once).
  StreamCacheStats stream_cache;

  /// Folds `other` into this snapshot (counters add, histograms merge,
  /// mean_batch re-weighted by batch count). The fleet layer uses this to
  /// accumulate stats across shards and across retired generations.
  void Merge(const ServerStats& other);
};

/// Thread-safe forecast server over a frozen checkpoint.
class Server {
 public:
  /// Opens `workers` sessions from a metadata-only checkpoint (see
  /// InferenceSession::Open) and starts the worker threads.
  Server(const std::string& checkpoint_path, ServerOptions options);

  /// Same, for models that need their training dataset to rebuild.
  Server(const std::string& checkpoint_path,
         const data::TrafficDataset& dataset, ServerOptions options);

  /// Stops and joins the workers; pending requests are shed.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Enqueues a forecast for `window` [N, H, F] (raw scale) with the
  /// default deadline.
  std::future<Response> Submit(Tensor window);

  /// Enqueues with an explicit in-queue deadline budget.
  std::future<Response> Submit(Tensor window,
                               std::chrono::microseconds deadline_budget);

  /// Enqueues a forecast for one live stream: `stream_id` names the
  /// stream, `anchor` is its window position (StreamState::anchor()).
  /// When the stream cache is on and the request executes alone, the
  /// worker takes the incremental path — same bytes, fewer flops.
  std::future<Response> Submit(Tensor window, int64_t stream_id,
                               int64_t anchor);

  /// The stream cache this server consults (null when disabled).
  StreamCache* stream_cache() const { return cache_.get(); }

  /// Merged statistics snapshot (histograms merged across workers).
  ServerStats Stats() const;

  /// Checkpoint metadata the server is running.
  const ServingInfo& info() const;

  /// Stops accepting work and joins the workers (idempotent).
  void Stop();

 private:
  struct Worker {
    std::unique_ptr<InferenceSession> session;
    std::thread thread;
    mutable std::mutex stats_mutex;
    metrics::LatencyHistogram latency;
    int64_t completed = 0;
    int64_t batches = 0;
    int64_t batch_requests = 0;
  };

  void Start(int workers);
  void WorkerLoop(Worker& worker);

  ServerOptions options_;
  BatchingQueue queue_;
  /// Stream cache in use: options_.cache when provided, else a private
  /// one (created when options_.stream_cache and the env gate allow it).
  std::shared_ptr<StreamCache> cache_;
  /// True when cache_ was self-created — then Stats() folds its counters.
  bool cache_owner_ = false;
  std::vector<std::unique_ptr<Worker>> workers_;
  bool stopped_ = false;
};

}  // namespace serve
}  // namespace stwa

#endif  // STWA_SERVE_SERVER_H_
