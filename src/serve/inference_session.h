// Forward-only inference over a frozen checkpoint.
//
// An InferenceSession owns one model instance reconstructed from a serving
// checkpoint (serve/checkpoint.h) and answers raw-scale forecast queries:
// inputs are normalised with the checkpoint's scaler, the forward pass
// runs under ag::NoGradMode (no tape nodes — asserted), and outputs are
// denormalised back to flow units. Sessions are deliberately not
// thread-safe: models carry per-forward state, so the server gives every
// worker thread its own session; identical weights make their outputs
// bit-identical.

#ifndef STWA_SERVE_INFERENCE_SESSION_H_
#define STWA_SERVE_INFERENCE_SESSION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "data/scaler.h"
#include "ir/plan.h"
#include "serve/checkpoint.h"
#include "train/trainer.h"

namespace stwa {
namespace serve {

/// One frozen model + scaler behind a raw-in/raw-out forecast call.
class InferenceSession {
 public:
  /// Opens a checkpoint whose model can be rebuilt from metadata alone
  /// (the ST-WA family and the enhanced GRU/ATT models — anything that
  /// only needs sensor/feature counts). Graph-convolutional baselines
  /// need the dataset-bearing overload and are rejected here with a
  /// clear error.
  static std::unique_ptr<InferenceSession> Open(const std::string& path);

  /// Opens a checkpoint for any registered model, rebuilding it against
  /// `dataset` (graph supports, temporal similarity etc. are recomputed
  /// from it, so pass the dataset the model was trained on).
  static std::unique_ptr<InferenceSession> Open(
      const std::string& path, const data::TrafficDataset& dataset);

  /// Raw-scale forecast: window [B, N, H, F] (or [N, H, F], treated as
  /// B=1) -> forecast of the same batch rank with U steps. Runs under
  /// NoGradMode. Deterministic: eval mode uses the latent mean, so equal
  /// inputs give bit-equal outputs for any batch size. The first call per
  /// batch size captures a forward-only execution plan (ir/plan.h) —
  /// fused and region-partitioned per the gates snapshotted when the
  /// session was opened; later calls replay it with the new window data —
  /// bit-identical outputs, no graph construction. STWA_NO_PLAN=1 (at
  /// open time) keeps every call eager.
  Tensor Forecast(const Tensor& raw_window);

  const ServingInfo& info() const { return info_; }
  const data::StandardScaler& scaler() const { return scaler_; }

  /// Number of Forward calls served (one per batch).
  int64_t forward_count() const { return forward_count_; }

 private:
  InferenceSession(ServingInfo info,
                   std::unique_ptr<train::ForecastModel> model);

  ServingInfo info_;
  data::StandardScaler scaler_;
  std::unique_ptr<train::ForecastModel> model_;
  /// Plan gates snapshotted when the session was constructed
  /// (ir::SnapshotPlanModes): every Forecast of one session agrees on
  /// plan/fuse/region modes even if a global toggle flips mid-stream.
  ir::PlanModes modes_;
  int64_t forward_count_ = 0;
  /// Forward-only plans keyed by batch size (all other input dims are
  /// fixed by the checkpoint). Null entry: shape not plannable, stay
  /// eager. Sessions are single-threaded, so no lock.
  std::unordered_map<int64_t, std::unique_ptr<ir::ExecutionPlan>> plans_;
};

}  // namespace serve
}  // namespace stwa

#endif  // STWA_SERVE_INFERENCE_SESSION_H_
