// Forward-only inference over a frozen checkpoint.
//
// An InferenceSession owns one model instance reconstructed from a serving
// checkpoint (serve/checkpoint.h) and answers raw-scale forecast queries:
// inputs are normalised with the checkpoint's scaler, the forward pass
// runs under ag::NoGradMode (no tape nodes — asserted), and outputs are
// denormalised back to flow units. Sessions are deliberately not
// thread-safe: models carry per-forward state, so the server gives every
// worker thread its own session; identical weights make their outputs
// bit-identical.

#ifndef STWA_SERVE_INFERENCE_SESSION_H_
#define STWA_SERVE_INFERENCE_SESSION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/scaler.h"
#include "ir/plan.h"
#include "ir/time_slice.h"
#include "serve/checkpoint.h"
#include "serve/stream_cache.h"
#include "simd/lowp.h"
#include "train/trainer.h"

namespace stwa {
namespace serve {

/// Per-session serving configuration.
struct SessionConfig {
  /// Weight precision tier for the session's GEMMs (simd/lowp.h):
  /// kFp32 serves the checkpoint bytes as-is; kBf16 and kInt8 prepack
  /// every rank-2 parameter into reduced-precision panels at open, so
  /// the hot path never repacks. Activations stay fp32 in every tier,
  /// and within one tier outputs are bit-identical across thread counts,
  /// batching and plan toggles. Defaults to STWA_PRECISION
  /// (fp32 / bf16 / int8; unset means fp32).
  simd::Precision precision = simd::EnvPrecision();
};

/// True for models whose construction depends only on sensor/feature
/// counts, so a checkpoint alone is enough to rebuild them (the ST-WA
/// family and the enhanced GRU/ATT models). Graph-convolutional baselines
/// recompute supports from dataset content and need the real dataset.
bool DatasetFreeModel(const std::string& name);

/// Minimal dataset carrying only the dimensions the dataset-free models
/// read (num_sensors / num_features).
data::TrafficDataset StubDataset(const ServingInfo& info);

/// One frozen model + scaler behind a raw-in/raw-out forecast call.
class InferenceSession {
 public:
  /// Opens a checkpoint whose model can be rebuilt from metadata alone
  /// (the ST-WA family and the enhanced GRU/ATT models — anything that
  /// only needs sensor/feature counts). Graph-convolutional baselines
  /// need the dataset-bearing overload and are rejected here with a
  /// clear error.
  static std::unique_ptr<InferenceSession> Open(const std::string& path,
                                                const SessionConfig& config =
                                                    SessionConfig());

  /// Opens a checkpoint for any registered model, rebuilding it against
  /// `dataset` (graph supports, temporal similarity etc. are recomputed
  /// from it, so pass the dataset the model was trained on).
  static std::unique_ptr<InferenceSession> Open(
      const std::string& path, const data::TrafficDataset& dataset,
      const SessionConfig& config = SessionConfig());

  /// Unregisters any reduced-precision weight panels before the model is
  /// destroyed (tensor/lowp_cache.h lifetime rule).
  ~InferenceSession();

  /// Raw-scale forecast: window [B, N, H, F] (or [N, H, F], treated as
  /// B=1) -> forecast of the same batch rank with U steps. Runs under
  /// NoGradMode. Deterministic: eval mode uses the latent mean, so equal
  /// inputs give bit-equal outputs for any batch size. The first call per
  /// batch size captures a forward-only execution plan (ir/plan.h) —
  /// fused and region-partitioned per the gates snapshotted when the
  /// session was opened; later calls replay it with the new window data —
  /// bit-identical outputs, no graph construction. STWA_NO_PLAN=1 (at
  /// open time) keeps every call eager.
  Tensor Forecast(const Tensor& raw_window);

  /// Forecast for one live stream with cross-call reuse. `raw_window` is
  /// a single window ([N, H, F] or [1, N, H, F]); `stream_id` names the
  /// stream, `anchor` its position (StreamState::anchor()), `generation`
  /// the weights generation the caller serves (tags new entries, gates
  /// lookups). Outputs are byte-identical to Forecast on the same window —
  /// reuse paths (see serve/stream_cache.h) are memcmp-gated and splice
  /// columns whose bits match a cold compute by the kernel column-
  /// independence contract. Falls back to Forecast (counting a bypass)
  /// when `cache` is null, plans are off/unplannable, or the plan samples
  /// rng.
  Tensor ForecastStream(const Tensor& raw_window, int64_t stream_id,
                        int64_t anchor, StreamCache* cache,
                        uint64_t generation);

  const ServingInfo& info() const { return info_; }
  const data::StandardScaler& scaler() const { return scaler_; }

  /// Precision tier this session serves at.
  simd::Precision precision() const { return config_.precision; }

  /// Number of Forward calls served (one per batch).
  int64_t forward_count() const { return forward_count_; }

 private:
  InferenceSession(ServingInfo info,
                   std::unique_ptr<train::ForecastModel> model,
                   SessionConfig config);

  /// Packs every rank-2 parameter into panels for the session tier and
  /// registers them in the lowp weight cache (no-op at kFp32). int8
  /// scales come from the checkpoint's baked metadata when present.
  void RegisterLowpWeights();

  ServingInfo info_;
  data::StandardScaler scaler_;
  std::unique_ptr<train::ForecastModel> model_;
  SessionConfig config_;
  /// Weight buffers registered in the lowp cache; unregistered in the
  /// destructor, strictly before model_ frees them.
  std::vector<const float*> lowp_keys_;
  /// Plan gates snapshotted when the session was constructed
  /// (ir::SnapshotPlanModes): every Forecast of one session agrees on
  /// plan/fuse/region modes even if a global toggle flips mid-stream.
  ir::PlanModes modes_;
  int64_t forward_count_ = 0;
  /// Forward-only plans keyed by batch size (all other input dims are
  /// fixed by the checkpoint). Null entry: shape not plannable, stay
  /// eager. Sessions are single-threaded, so no lock.
  std::unordered_map<int64_t, std::unique_ptr<ir::ExecutionPlan>> plans_;

  /// Time-slice state of the batch-1 plan (ForecastStream). Populated by
  /// the capture that creates the plan — the analysis reads capture-live
  /// shapes — and immutable afterwards.
  struct StreamPlan {
    /// Analysis ran (whether or not it proved feasible).
    bool analyzed = false;
    /// Invariant step values are resident on the plan (retained since the
    /// capture trace), so masked replays may skip those steps.
    bool invariant_warm = false;
    ir::TimeSliceInfo info;
    std::unique_ptr<ir::ColumnProgram> columns;
    /// Capture-time shapes of the frontier values — foreign cache entries
    /// must match them before a splice is attempted.
    std::vector<Shape> frontier_shapes;
    /// Execute-everything mask (defensive cold replay).
    std::vector<uint8_t> all_mask;
  };
  StreamPlan stream_;

  /// Reused elementwise staging (data/scaler.h Into variants): zero
  /// steady-state allocations on the forecast hot path. The use_count
  /// guard automatically falls back to a fresh buffer whenever a previous
  /// result is still referenced (e.g. held by the stream cache).
  Tensor norm_staging_;
  Tensor out_staging_;

  /// Runs the time-slice analysis on a freshly captured batch-1 plan
  /// (values still live from the trace), builds the column program and
  /// applies value retention. Harvesting of the capture's own values is
  /// the caller's job.
  void AnalyzeStreamPlan(ir::ExecutionPlan* plan);
};

}  // namespace serve
}  // namespace stwa

#endif  // STWA_SERVE_INFERENCE_SESSION_H_
