#include "serve/stream_state.h"

#include <algorithm>

#include "common/check.h"

namespace stwa {
namespace serve {

StreamState::StreamState(int64_t num_sensors, int64_t history,
                         int64_t features)
    : n_(num_sensors),
      h_(history),
      f_(features),
      ring_(static_cast<size_t>(num_sensors * history * features), 0.0f),
      head_(static_cast<size_t>(num_sensors), 0),
      seen_(static_cast<size_t>(num_sensors), 0) {
  STWA_CHECK(n_ > 0 && h_ > 0 && f_ > 0,
             "StreamState needs positive dimensions");
}

void StreamState::PushSensor(int64_t sensor, const float* values) {
  STWA_CHECK(sensor >= 0 && sensor < n_, "sensor ", sensor,
             " out of range [0, ", n_, ")");
  float* slot = ring_.data() + (sensor * h_ + head_[sensor]) * f_;
  std::copy(values, values + f_, slot);
  head_[sensor] = (head_[sensor] + 1) % h_;
  ++seen_[sensor];
}

void StreamState::Push(const std::vector<float>& observation) {
  STWA_CHECK(static_cast<int64_t>(observation.size()) == n_ * f_,
             "observation has ", observation.size(), " values, expected ",
             n_ * f_, " (", n_, " sensors x ", f_, " features)");
  for (int64_t i = 0; i < n_; ++i) {
    PushSensor(i, observation.data() + i * f_);
  }
}

bool StreamState::ready() const { return min_filled() >= h_; }

int64_t StreamState::min_filled() const {
  int64_t m = seen_[0];
  for (int64_t i = 1; i < n_; ++i) m = std::min(m, seen_[i]);
  return std::min(m, h_);
}

int64_t StreamState::anchor() const {
  int64_t m = seen_[0];
  for (int64_t i = 1; i < n_; ++i) m = std::min(m, seen_[i]);
  return m;
}

int64_t StreamState::seen(int64_t sensor) const {
  STWA_CHECK(sensor >= 0 && sensor < n_, "sensor out of range");
  return seen_[sensor];
}

void StreamState::WindowInto(Tensor* out) const {
  STWA_CHECK(ready(), "stream still warming up: have ", min_filled(), "/",
             h_, " observations for the slowest sensor");
  const Shape shape{1, n_, h_, f_};
  if (out->shape() != shape || out->use_count() > 1) {
    *out = Tensor::Uninit(shape);
  }
  float* dst = out->data();
  for (int64_t i = 0; i < n_; ++i) {
    // Oldest-first: the ring head is the oldest element once full.
    const int64_t head = head_[i];
    const float* sensor_ring = ring_.data() + i * h_ * f_;
    float* sensor_dst = dst + i * h_ * f_;
    const int64_t tail_steps = h_ - head;
    std::copy(sensor_ring + head * f_, sensor_ring + h_ * f_, sensor_dst);
    std::copy(sensor_ring, sensor_ring + head * f_,
              sensor_dst + tail_steps * f_);
  }
}

Tensor StreamState::Window() const {
  Tensor out;
  WindowInto(&out);
  return out;
}

}  // namespace serve
}  // namespace stwa
