// Per-stream activation cache for incremental sliding-window inference.
//
// Live forecast streams advance one observation at a time, so consecutive
// windows of one stream overlap in H-1 of their H columns. The cache holds,
// per stream id:
//
//   * the raw window and raw-scale output of the last answered forecast —
//     a repeat request at the same anchor whose window bytes still match
//     is answered without touching the model (output hit);
//   * the full-window values of the plan's sliced frontier steps
//     (ir/time_slice.h) — when the next request's anchor is exactly one
//     step ahead and the H-1 overlapping columns memcmp-match, the session
//     recomputes only the newest column, splices it onto these values and
//     replays just the window-global tail (shift hit).
//
// Anchors are a routing heuristic, never a correctness carrier: every hit
// is gated by a byte comparison of the actual window contents, so a
// client that rewinds, skips or rewrites history degrades to a miss, not
// a wrong answer.
//
// Invalidation: entries are tagged with the (weights) generation and the
// precision tier they were computed under. A lookup presents the caller's
// tags; any mismatch rejects the entry (counted stale_rejected) without
// serving it. fleet::ModelProfile::Reload — which is also the path
// online::OnlineLearner publishes ride — calls Invalidate(new_generation)
// at swap: flush everything, retag. Workers still draining on the old
// generation present old tags and simply miss, answering on the old
// weights as the drain contract requires; zero stale reads either way.
//
// Thread-safe: one cache is shared by all workers of a server (and by all
// shards of a fleet profile — the determinism contract makes every
// worker's bytes interchangeable).
//
// Escape hatch: STWA_NO_STREAM_CACHE=1 / SetStreamCacheMode(false)
// disables the whole path (servers then never construct a cache).

#ifndef STWA_SERVE_STREAM_CACHE_H_
#define STWA_SERVE_STREAM_CACHE_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "simd/lowp.h"
#include "tensor/tensor.h"

namespace stwa {
namespace serve {

/// Counters for the streaming cache (ServerStats / fleet stats surface
/// these as sc_* fields).
struct StreamCacheStats {
  /// Repeat forecast answered straight from the cached output.
  int64_t output_hits = 0;
  /// Shift-by-one reuse: one new column computed, global tail replayed.
  int64_t shift_hits = 0;
  /// Stream seen but no reusable entry (first contact, overlap mismatch,
  /// anchor gap) — full compute, entry refreshed.
  int64_t misses = 0;
  /// Entries rejected for a generation/precision tag mismatch. Stale
  /// entries are never served; this counts how many lookups hit one.
  int64_t stale_rejected = 0;
  /// Requests that skipped the cache entirely (no stream id, batched
  /// rides, unplannable session, rng in the plan).
  int64_t bypass = 0;
  /// Invalidate() calls (hot reloads / online publishes).
  int64_t flushes = 0;
  /// Live entries.
  int64_t entries = 0;
  /// Bytes held by live entries (windows + outputs + segments).
  int64_t bytes = 0;

  void Merge(const StreamCacheStats& other);
};

/// Shared, mutex-guarded per-stream entry store. See file comment.
class StreamCache {
 public:
  /// One stream's cached state. Tensors are shared handles; `window` is
  /// always a private copy (it is the lookup key and must not alias
  /// caller-mutable storage).
  struct Entry {
    /// Stream position the entry was computed at (StreamState::anchor()).
    int64_t anchor = -1;
    /// Weights generation the entry was computed under.
    uint64_t generation = 0;
    /// Precision tier the entry was computed under.
    simd::Precision precision = simd::Precision::kFp32;
    /// Raw input window [1, N, H, F] — the byte-compared key.
    Tensor window;
    /// Raw-scale forecast [N, U, F].
    Tensor output;
    /// Full-window values of the plan's frontier steps, in
    /// TimeSliceInfo::frontier_steps order (normalised domain). Empty when
    /// the producing call had no incremental plan — output hits still work.
    std::vector<Tensor> segments;
  };

  explicit StreamCache(uint64_t generation = 1) : generation_(generation) {}

  /// Copies stream `stream_id`'s entry into *out when one exists and its
  /// tags match the caller's; returns false otherwise. A tag mismatch
  /// counts stale_rejected and leaves the entry in place (a worker still
  /// draining on the old generation may legitimately keep using it).
  bool Lookup(int64_t stream_id, uint64_t generation,
              simd::Precision precision, Entry* out);

  /// Installs/overwrites the entry for `stream_id`.
  void Update(int64_t stream_id, Entry entry);

  /// Flushes every entry and moves the cache to `new_generation`.
  /// Called at the hot-reload swap point, before new-generation workers
  /// take traffic.
  void Invalidate(uint64_t new_generation);

  /// Generation tag for new entries (ServerOptions carries the value the
  /// workers present; this accessor is for owners that manage both).
  uint64_t generation() const;

  // Outcome counters — the session classifies its own path.
  void CountOutputHit();
  void CountShiftHit();
  void CountMiss();
  void CountBypass();

  StreamCacheStats Stats() const;

 private:
  int64_t EntryBytes(const Entry& e) const;

  mutable std::mutex mutex_;
  uint64_t generation_;
  std::unordered_map<int64_t, Entry> entries_;
  StreamCacheStats stats_;
};

/// True when streaming-cache use is globally enabled: the default, unless
/// STWA_NO_STREAM_CACHE is set non-zero or SetStreamCacheMode(false) was
/// called. Servers read this once at construction.
bool StreamCacheEnabled();

/// Runtime override of the STWA_NO_STREAM_CACHE gate (A/B benches).
void SetStreamCacheMode(bool enabled);

}  // namespace serve
}  // namespace stwa

#endif  // STWA_SERVE_STREAM_CACHE_H_
