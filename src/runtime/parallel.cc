#include "runtime/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/string_util.h"

namespace stwa {
namespace runtime {
namespace {

/// One parallel region: a chunk body plus claim/done counters. Held by
/// shared_ptr so a worker that wakes late can still touch a drained job
/// safely (it finds the claim counter exhausted and goes back to sleep).
struct Job {
  std::function<void(int64_t)> fn;
  int64_t total = 0;
  std::atomic<int64_t> next{0};
  std::atomic<int64_t> done{0};
  std::mutex error_mutex;
  std::exception_ptr error;
};

/// Persistent worker pool. Run() publishes one Job; workers and the
/// calling thread claim chunk indices from the job's atomic counter until
/// it drains.
class ThreadPool {
 public:
  explicit ThreadPool(int threads) : target_threads_(std::max(1, threads)) {
    for (int i = 0; i < target_threads_ - 1; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      shutdown_ = true;
    }
    job_cv_.notify_all();
    for (std::thread& w : workers_) w.join();
  }

  int size() const { return target_threads_; }

  /// Runs `fn(chunk)` for every chunk in [0, num_chunks); blocks until all
  /// chunks finish. The calling thread participates.
  void Run(int64_t num_chunks, std::function<void(int64_t)> fn) {
    // One region at a time: concurrent Run() callers queue up here.
    std::lock_guard<std::mutex> run_lock(run_mutex_);
    auto job = std::make_shared<Job>();
    job->fn = std::move(fn);
    job->total = num_chunks;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      current_job_ = job;
      ++job_generation_;
    }
    job_cv_.notify_all();
    Drain(*job);
    {
      std::unique_lock<std::mutex> lock(mutex_);
      done_cv_.wait(lock, [&] {
        return job->done.load(std::memory_order_acquire) == job->total;
      });
      current_job_.reset();
    }
    if (job->error) std::rethrow_exception(job->error);
  }

 private:
  void Drain(Job& job) {
    detail::in_parallel_region = true;
    for (;;) {
      const int64_t chunk = job.next.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= job.total) break;
      try {
        job.fn(chunk);
      } catch (...) {
        std::lock_guard<std::mutex> lock(job.error_mutex);
        if (!job.error) job.error = std::current_exception();
      }
      if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          job.total) {
        // All chunks finished; wake the thread blocked in Run(). The lock
        // orders the notify against the predicate re-check.
        std::lock_guard<std::mutex> lock(mutex_);
        done_cv_.notify_all();
      }
    }
    detail::in_parallel_region = false;
  }

  void WorkerLoop() {
    uint64_t seen_generation = 0;
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        job_cv_.wait(lock, [&] {
          return shutdown_ || job_generation_ != seen_generation;
        });
        if (shutdown_) return;
        seen_generation = job_generation_;
        job = current_job_;
      }
      if (job) Drain(*job);
    }
  }

  const int target_threads_;
  std::vector<std::thread> workers_;
  std::mutex run_mutex_;

  std::mutex mutex_;
  std::condition_variable job_cv_;
  std::condition_variable done_cv_;
  bool shutdown_ = false;
  uint64_t job_generation_ = 0;
  std::shared_ptr<Job> current_job_;
};

std::mutex g_pool_mutex;
std::shared_ptr<ThreadPool> g_pool;  // guarded by g_pool_mutex

std::shared_ptr<ThreadPool> Pool() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (!g_pool) {
    g_pool = std::make_shared<ThreadPool>(DefaultNumThreads());
    detail::pool_size.store(g_pool->size(), std::memory_order_relaxed);
  }
  return g_pool;
}

}  // namespace

namespace detail {

std::atomic<int> pool_size{0};
thread_local bool in_parallel_region = false;

int ResolvePoolSize() { return Pool()->size(); }

}  // namespace detail

int DefaultNumThreads() {
  const int64_t env = GetEnvIntOr("STWA_NUM_THREADS", 0);
  if (env >= 1) return static_cast<int>(env);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int NumThreads() { return Pool()->size(); }

void SetNumThreads(int n) {
  STWA_CHECK(!detail::in_parallel_region,
             "SetNumThreads inside a parallel region");
  const int threads = n < 1 ? DefaultNumThreads() : n;
  std::shared_ptr<ThreadPool> old;
  {
    std::lock_guard<std::mutex> lock(g_pool_mutex);
    if (g_pool && g_pool->size() == threads) return;
    old = std::move(g_pool);  // destroyed (workers joined) outside the lock
    g_pool = std::make_shared<ThreadPool>(threads);
    detail::pool_size.store(threads, std::memory_order_relaxed);
  }
}

bool InParallelRegion() { return detail::in_parallel_region; }

ScopedSerialRegion::ScopedSerialRegion() : prev_(detail::in_parallel_region) {
  detail::in_parallel_region = true;
}

ScopedSerialRegion::~ScopedSerialRegion() {
  detail::in_parallel_region = prev_;
}

void RunRegions(int64_t count, const std::function<void(int64_t)>& fn) {
  if (count <= 0) return;
  std::shared_ptr<ThreadPool> pool = Pool();
  if (count == 1 || pool->size() == 1 || detail::in_parallel_region) {
    for (int64_t i = 0; i < count; ++i) fn(i);
    return;
  }
  // Each task index is claimed by exactly one thread and Run() blocks until
  // the last task's body returns, so the join is deterministic; task bodies
  // inherit the in_parallel_region flag from Drain(), which keeps nested
  // kernels serial.
  pool->Run(count, fn);
}

namespace detail {

void ParallelForImpl(int64_t begin, int64_t end, int64_t grain,
                     const RangeFn& fn) {
  const int64_t range = end - begin;
  std::shared_ptr<ThreadPool> pool = Pool();
  if (pool->size() == 1 || detail::in_parallel_region) {  // pool shrank meanwhile
    fn(begin, end);
    return;
  }
  // At most 4 chunks per thread for load balancing, at least `grain`
  // indices per chunk. Every output index belongs to exactly one chunk and
  // chunk-local iteration order matches the serial loop, so the result is
  // bit-identical to running fn(begin, end) directly.
  const int64_t max_chunks =
      std::min<int64_t>(static_cast<int64_t>(pool->size()) * 4,
                        (range + grain - 1) / grain);
  const int64_t chunk_size = (range + max_chunks - 1) / max_chunks;
  const int64_t num_chunks = (range + chunk_size - 1) / chunk_size;
  pool->Run(num_chunks, [&](int64_t chunk) {
    const int64_t b = begin + chunk * chunk_size;
    const int64_t e = std::min(end, b + chunk_size);
    if (b < e) fn(b, e);
  });
}

}  // namespace detail

}  // namespace runtime
}  // namespace stwa
