// Shared parallel execution runtime.
//
// A single persistent worker pool backs every parallel kernel in the
// library. ParallelFor splits an index range into contiguous chunks and
// runs them on the pool; each output element is computed by exactly one
// chunk with the same per-element operation order as the serial loop, so
// results are bit-identical across thread counts (see DESIGN.md
// "Execution runtime" for the determinism contract).
//
// Thread count resolution, in priority order:
//   1. runtime::SetNumThreads(n) (e.g. from train::TrainConfig)
//   2. the STWA_NUM_THREADS environment variable
//   3. std::thread::hardware_concurrency()
// At threads == 1 every ParallelFor runs inline on the calling thread —
// the serial fallback used by the determinism tests.

#ifndef STWA_RUNTIME_PARALLEL_H_
#define STWA_RUNTIME_PARALLEL_H_

#include <atomic>
#include <cstdint>
#include <functional>

namespace stwa {
namespace runtime {

/// Chunk body: processes the half-open index range [begin, end).
using RangeFn = std::function<void(int64_t, int64_t)>;

/// Number of threads the pool currently targets (>= 1).
int NumThreads();

/// Resizes the worker pool. n < 1 resets to the environment/hardware
/// default. Safe to call between parallel regions; not from inside one.
void SetNumThreads(int n);

/// Thread count implied by STWA_NUM_THREADS / hardware_concurrency,
/// ignoring any SetNumThreads override.
int DefaultNumThreads();

/// True while the calling thread is executing inside a ParallelFor chunk.
bool InParallelRegion();

/// Runs fn(0) .. fn(count - 1) on the worker pool and blocks until every
/// call has finished (deterministic join: the caller never resumes while a
/// region body is still running). Unlike ParallelFor there is no range
/// splitting — each index is one indivisible task (an execution-plan
/// region, ir/regions.h). Bodies run with the nested-parallelism flag set,
/// so kernels inside a region fall back to their serial paths — which
/// compute the same bits by the ParallelFor determinism contract. Runs
/// inline on the calling thread (ascending order) when count <= 1, the
/// pool has one thread, or the caller is already inside a parallel region.
/// Exceptions from fn are rethrown on the calling thread.
void RunRegions(int64_t count, const std::function<void(int64_t)>& fn);

/// RAII that pins the calling thread to serial kernel execution for its
/// lifetime: every ParallelFor and RunRegions on this thread runs inline,
/// exactly as if it were nested inside a parallel region. Fleet shard
/// workers use this so K shards x W workers parallelise *across* requests
/// instead of contending for the shared pool on every small kernel; the
/// ParallelFor determinism contract makes the outputs bit-identical either
/// way. Nests safely (restores the previous state).
class ScopedSerialRegion {
 public:
  ScopedSerialRegion();
  ~ScopedSerialRegion();
  ScopedSerialRegion(const ScopedSerialRegion&) = delete;
  ScopedSerialRegion& operator=(const ScopedSerialRegion&) = delete;

 private:
  bool prev_;
};

namespace detail {

/// Pool size mirror (0 = pool not created yet) and the nested-region flag,
/// exposed so the ParallelFor fast path inlines into kernel call sites —
/// small tensors must not pay a cross-TU call to decide "run serial".
extern std::atomic<int> pool_size;
extern thread_local bool in_parallel_region;

/// Creates the pool if needed and returns its size. Out-of-line slow path.
int ResolvePoolSize();

/// True when a range of `range` indices at the given grain is worth
/// dispatching to the pool (multi-thread pool, non-nested caller).
inline bool ShouldParallelize(int64_t range, int64_t grain) {
  if (range <= grain || in_parallel_region) return false;
  const int size = pool_size.load(std::memory_order_relaxed);
  return (size == 0 ? ResolvePoolSize() : size) > 1;
}

/// Pool dispatch behind ShouldParallelize; `fn` only borrows the caller's
/// functor for the duration of the (blocking) call.
void ParallelForImpl(int64_t begin, int64_t end, int64_t grain,
                     const RangeFn& fn);

}  // namespace detail

/// Runs fn over [begin, end) in contiguous chunks of at least `grain`
/// indices. Runs inline — with no type erasure or allocation — when the
/// range is empty, fits in one grain, the pool has a single thread, or the
/// caller is already inside a parallel region (nested parallelism degrades
/// to serial). Exceptions thrown by fn are rethrown on the calling thread.
template <typename Fn>
void ParallelFor(int64_t begin, int64_t end, int64_t grain, Fn&& fn) {
  if (begin >= end) return;
  if (grain < 1) grain = 1;
  if (!detail::ShouldParallelize(end - begin, grain)) {
    fn(begin, end);
    return;
  }
  detail::ParallelForImpl(begin, end, grain,
                          RangeFn(std::ref(fn)));  // no functor copy
}

}  // namespace runtime
}  // namespace stwa

#endif  // STWA_RUNTIME_PARALLEL_H_
