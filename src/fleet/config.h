// Fleet node configuration file: one line per directive, `#` comments.
//
//   profile <name> ckpt=<path> [tiles=T] [shards=K] [workers=W]
//           [max_batch=B] [max_delay_us=D] [capacity=C] [deadline_us=D]
//           [precision=fp32|bf16|int8] [serial_kernels=0|1]
//   quota <tenant> rate=<tokens/s> [burst=<cap>]
//   default_quota rate=<tokens/s> [burst=<cap>]
//
// Unknown directives and unknown key=value options are errors (a typo
// silently serving defaults would be worse). rate=0 means unlimited.

#ifndef STWA_FLEET_CONFIG_H_
#define STWA_FLEET_CONFIG_H_

#include <string>
#include <utility>
#include <vector>

#include "fleet/admission.h"
#include "fleet/profile.h"

namespace stwa {
namespace fleet {

/// Parsed fleet node configuration.
struct FleetConfig {
  std::vector<FleetProfileConfig> profiles;
  /// Quota for tenants without an explicit entry (default: unlimited).
  TenantQuota default_quota;
  /// Explicit per-tenant quotas, in file order.
  std::vector<std::pair<std::string, TenantQuota>> quotas;
};

/// Parses config text; throws stwa::Error with the offending line on any
/// syntax problem.
FleetConfig ParseFleetConfig(const std::string& text);

/// Reads and parses a config file.
FleetConfig LoadFleetConfig(const std::string& path);

}  // namespace fleet
}  // namespace stwa

#endif  // STWA_FLEET_CONFIG_H_
