#include "fleet/registry.h"

#include <exception>
#include <thread>

#include "common/check.h"

namespace stwa {
namespace fleet {

ModelRegistry::ModelRegistry(std::vector<FleetProfileConfig> configs) {
  STWA_CHECK(!configs.empty(), "fleet registry needs at least one profile");
  for (size_t i = 0; i < configs.size(); ++i) {
    for (size_t j = i + 1; j < configs.size(); ++j) {
      STWA_CHECK(configs[i].name != configs[j].name,
                 "duplicate fleet profile name '", configs[i].name, "'");
    }
  }
  std::vector<std::unique_ptr<ModelProfile>> loaded(configs.size());
  std::vector<std::exception_ptr> errors(configs.size());
  std::vector<std::thread> loaders;
  loaders.reserve(configs.size());
  for (size_t i = 0; i < configs.size(); ++i) {
    loaders.emplace_back([&, i] {
      try {
        loaded[i] = std::make_unique<ModelProfile>(configs[i]);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  for (std::thread& t : loaders) t.join();
  for (const std::exception_ptr& err : errors) {
    if (err) std::rethrow_exception(err);
  }
  profiles_.reserve(configs.size());
  for (size_t i = 0; i < configs.size(); ++i) {
    profiles_.emplace_back(configs[i].name, std::move(loaded[i]));
  }
}

ModelProfile* ModelRegistry::Find(const std::string& name) {
  for (auto& [key, profile] : profiles_) {
    if (key == name) return profile.get();
  }
  return nullptr;
}

const ModelProfile* ModelRegistry::Find(const std::string& name) const {
  for (const auto& [key, profile] : profiles_) {
    if (key == name) return profile.get();
  }
  return nullptr;
}

ModelProfile& ModelRegistry::Get(const std::string& name) {
  ModelProfile* profile = Find(name);
  if (profile == nullptr) {
    std::string known;
    for (const auto& [key, p] : profiles_) {
      if (!known.empty()) known += ", ";
      known += key;
    }
    STWA_FAIL("unknown fleet profile '", name, "' (registered: ", known,
              ")");
  }
  return *profile;
}

std::vector<std::string> ModelRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(profiles_.size());
  for (const auto& [key, profile] : profiles_) names.push_back(key);
  return names;
}

}  // namespace fleet
}  // namespace stwa
