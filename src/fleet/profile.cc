#include "fleet/profile.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/check.h"
#include "common/stopwatch.h"
#include "nn/serialize.h"
#include "serve/checkpoint.h"

namespace stwa {
namespace fleet {
namespace {

double Micros(const Stopwatch& sw) { return sw.ElapsedSeconds() * 1e6; }

}  // namespace

ModelProfile::ModelProfile(FleetProfileConfig config)
    : config_(std::move(config)),
      router_(serve::ReadServingInfo(config_.checkpoint).num_sensors,
              config_.tiles, config_.shards) {
  STWA_CHECK(!config_.name.empty(), "fleet profile needs a name");
  STWA_CHECK(config_.workers >= 1, "profile '", config_.name,
             "' needs at least one worker per shard");
  // One cache for all shards and generations (see header). Created before
  // the first generation so BuildGeneration can inject it.
  if (serve::StreamCacheEnabled()) {
    stream_cache_ = std::make_shared<serve::StreamCache>(/*generation=*/1);
  }
  gen_ = BuildGeneration(config_.checkpoint, /*version=*/1);
  n_ = gen_->info.num_sensors;
  history_ = gen_->info.settings.history;
  features_ = gen_->info.num_features;
  tile_states_.reserve(static_cast<size_t>(config_.tiles));
  for (int64_t t = 0; t < config_.tiles; ++t) {
    tile_states_.emplace_back(n_, history_, features_);
  }
  shard_mutexes_.reserve(static_cast<size_t>(config_.shards));
  for (int64_t k = 0; k < config_.shards; ++k) {
    shard_mutexes_.push_back(std::make_unique<std::mutex>());
  }
  retired_.resize(static_cast<size_t>(config_.shards));
}

ModelProfile::~ModelProfile() {
  std::shared_ptr<Generation> gen;
  {
    std::unique_lock<std::shared_mutex> lock(gen_mutex_);
    gen = std::move(gen_);
  }
  if (gen) {
    for (auto& shard : gen->shards) shard->Stop();
  }
}

std::shared_ptr<Generation> ModelProfile::BuildGeneration(
    const std::string& path, int64_t version) {
  auto gen = std::make_shared<Generation>();
  gen->version = version;
  gen->checkpoint_path = path;
  gen->format_version = nn::PeekCheckpointFormatVersion(path);
  gen->info = serve::ReadServingInfo(path);
  if (version > 1) {
    // The tile rings outlive the swap, so the replacement file must
    // describe the same stream geometry (the horizon may change).
    STWA_CHECK(gen->info.num_sensors == n_ &&
                   gen->info.settings.history == history_ &&
                   gen->info.num_features == features_,
               "reload of profile '", config_.name, "' from '", path,
               "' changes the stream geometry: serving [N=", n_,
               ", H=", history_, ", F=", features_, "], file [N=",
               gen->info.num_sensors, ", H=", gen->info.settings.history,
               ", F=", gen->info.num_features, "]");
  }
  serve::ServerOptions options;
  options.workers = config_.workers;
  options.batching.max_batch = config_.max_batch;
  options.batching.max_delay = std::chrono::microseconds(config_.max_delay_us);
  options.batching.capacity = config_.capacity;
  options.session.precision = config_.precision;
  options.default_deadline = std::chrono::microseconds(config_.deadline_us);
  options.serial_kernels = config_.serial_kernels;
  // Shards share the profile cache and present the generation version as
  // their cache tag; a null profile cache keeps shards cache-free (they
  // must not each self-create one — stats would fold per shard).
  options.stream_cache = stream_cache_ != nullptr;
  options.cache = stream_cache_;
  options.generation = static_cast<uint64_t>(version);
  gen->shards.reserve(static_cast<size_t>(config_.shards));
  for (int64_t k = 0; k < config_.shards; ++k) {
    gen->shards.push_back(std::make_unique<serve::Server>(path, options));
  }
  return gen;
}

serve::ServingInfo ModelProfile::Info() const {
  std::shared_lock<std::shared_mutex> lock(gen_mutex_);
  return gen_->info;
}

int64_t ModelProfile::Version() const {
  std::shared_lock<std::shared_mutex> lock(gen_mutex_);
  return gen_->version;
}

void ModelProfile::PushTile(int64_t tile,
                            const std::vector<float>& observation) {
  STWA_CHECK(tile >= 0 && tile < router_.tiles(), "tile ", tile,
             " out of range [0, ", router_.tiles(), ")");
  std::lock_guard<std::mutex> lock(
      *shard_mutexes_[static_cast<size_t>(router_.TileToShard(tile))]);
  tile_states_[static_cast<size_t>(tile)].Push(observation);
}

void ModelProfile::PushSensor(int64_t g, const float* values) {
  STWA_CHECK(g >= 0 && g < router_.global_sensors(), "global sensor ", g,
             " out of range [0, ", router_.global_sensors(), ")");
  const int64_t tile = router_.SensorToTile(g);
  std::lock_guard<std::mutex> lock(
      *shard_mutexes_[static_cast<size_t>(router_.TileToShard(tile))]);
  tile_states_[static_cast<size_t>(tile)].PushSensor(router_.SensorInTile(g),
                                                     values);
}

bool ModelProfile::TileReady(int64_t tile) const {
  STWA_CHECK(tile >= 0 && tile < router_.tiles(), "tile ", tile,
             " out of range [0, ", router_.tiles(), ")");
  std::lock_guard<std::mutex> lock(
      *shard_mutexes_[static_cast<size_t>(router_.TileToShard(tile))]);
  return tile_states_[static_cast<size_t>(tile)].ready();
}

int64_t ModelProfile::TileMinFilled(int64_t tile) const {
  STWA_CHECK(tile >= 0 && tile < router_.tiles(), "tile ", tile,
             " out of range [0, ", router_.tiles(), ")");
  std::lock_guard<std::mutex> lock(
      *shard_mutexes_[static_cast<size_t>(router_.TileToShard(tile))]);
  return tile_states_[static_cast<size_t>(tile)].min_filled();
}

std::future<serve::Response> ModelProfile::ForecastTile(int64_t tile) {
  STWA_CHECK(tile >= 0 && tile < router_.tiles(), "tile ", tile,
             " out of range [0, ", router_.tiles(), ")");
  const int64_t shard = router_.TileToShard(tile);
  Tensor window;
  int64_t anchor = -1;
  {
    std::lock_guard<std::mutex> lock(
        *shard_mutexes_[static_cast<size_t>(shard)]);
    const serve::StreamState& state = tile_states_[static_cast<size_t>(tile)];
    STWA_CHECK(state.ready(), "tile ", tile, " of profile '", config_.name,
               "' is still warming up (", state.min_filled(), " of ",
               history_, " steps)");
    window = state.Window().Reshape({n_, history_, features_});
    anchor = state.anchor();
  }
  // Holding the reader lock across the enqueue is the drain guarantee:
  // the reload's writer lock cannot be acquired until this request is in
  // its queue, and the retire path executes queued requests. The tile
  // index is the stream id: tiles advance one observation at a time, the
  // exact overlap the stream cache reuses.
  std::shared_lock<std::shared_mutex> lock(gen_mutex_);
  return gen_->shards[static_cast<size_t>(shard)]->Submit(
      std::move(window), /*stream_id=*/tile, anchor);
}

ReloadResult ModelProfile::Reload(const std::string& path) {
  std::lock_guard<std::mutex> serialize(reload_mutex_);
  ReloadResult result;
  Stopwatch prepare;
  std::shared_ptr<Generation> next = BuildGeneration(path, Version() + 1);
  result.prepare_us = Micros(prepare);
  result.version = next->version;
  result.ckpt_version = next->info.ckpt_version;

  std::shared_ptr<Generation> old;
  Stopwatch swap;
  {
    std::unique_lock<std::shared_mutex> lock(gen_mutex_);
    // Flush the stream cache inside the swap's writer section: no
    // new-generation request can run before the flush, so no entry
    // computed on the old weights is ever served after it. Old-generation
    // workers still draining present old tags and simply miss.
    if (stream_cache_) {
      stream_cache_->Invalidate(static_cast<uint64_t>(next->version));
    }
    old = std::move(gen_);
    gen_ = std::move(next);
  }
  result.swap_us = Micros(swap);

  // While the old generation drains, a concurrent Stats() must still see
  // its completions (the last in-flight futures resolve *during* the
  // Stop() below) — so it stays visible in retiring_ until its final
  // numbers are folded into retired_, in one critical section.
  {
    std::lock_guard<std::mutex> lock(retired_mutex_);
    retiring_.push_back(old);
  }
  Stopwatch drain;
  for (auto& shard : old->shards) shard->Stop();
  {
    std::lock_guard<std::mutex> lock(retired_mutex_);
    for (size_t k = 0; k < old->shards.size(); ++k) {
      retired_[k].Merge(old->shards[k]->Stats());
    }
    retiring_.erase(std::find(retiring_.begin(), retiring_.end(), old));
  }
  old.reset();
  result.drain_us = Micros(drain);
  return result;
}

std::vector<serve::ServerStats> ModelProfile::ShardStats() const {
  std::vector<serve::ServerStats> stats(
      static_cast<size_t>(config_.shards));
  {
    std::lock_guard<std::mutex> lock(retired_mutex_);
    for (size_t k = 0; k < stats.size(); ++k) stats[k] = retired_[k];
    for (const auto& gen : retiring_) {
      for (size_t k = 0; k < gen->shards.size(); ++k) {
        stats[k].Merge(gen->shards[k]->Stats());
      }
    }
  }
  std::shared_lock<std::shared_mutex> lock(gen_mutex_);
  for (size_t k = 0; k < gen_->shards.size(); ++k) {
    stats[k].Merge(gen_->shards[k]->Stats());
  }
  return stats;
}

serve::ServerStats ModelProfile::Stats() const {
  serve::ServerStats merged;
  for (const serve::ServerStats& shard : ShardStats()) merged.Merge(shard);
  // Shards are non-owners (their stream_cache sections are zero); the
  // profile folds the shared cache exactly once.
  if (stream_cache_) merged.stream_cache = stream_cache_->Stats();
  return merged;
}

}  // namespace fleet
}  // namespace stwa
