// One fleet serving profile: a named (city x precision) deployment of a
// serving checkpoint, sharded and hot-reloadable.
//
// A profile serves `tiles` independent districts of its checkpoint's
// N-sensor graph (ShardRouter), so the global stream count is tiles * N.
// Each shard owns one serve::Server (its own BatchingQueue and worker
// pool); the per-tile StreamState rings live in the profile and survive
// reloads, so a swap never loses warm-up.
//
// Hot reload is generation-based. A Generation bundles a monotone version
// number with the checkpoint's ServingInfo and the shard servers built
// from it. Reload builds the *next* generation completely — opening the
// sessions is the validation; a bad file throws before anything is
// swapped — then exchanges the generation pointer under a writer lock and
// retires the old one. Forecast submissions hold the reader lock across
// the enqueue, so every request observed by the old generation is already
// in its queues when the swap happens; retiring calls Server::Stop(),
// whose queue shutdown executes (not sheds) the remaining requests.
// Drain-before-retire: requests enqueued against generation G complete on
// G's weights even after G+1 is published, and nothing is dropped.

#ifndef STWA_FLEET_PROFILE_H_
#define STWA_FLEET_PROFILE_H_

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "fleet/shard_router.h"
#include "serve/server.h"
#include "serve/stream_cache.h"
#include "serve/stream_state.h"
#include "simd/lowp.h"

namespace stwa {
namespace fleet {

/// Static configuration of one profile (from the fleet config file).
struct FleetProfileConfig {
  /// Routing key clients prepend to protocol lines (e.g. "cityA").
  std::string name;
  /// Serving checkpoint path (serve/checkpoint.h).
  std::string checkpoint;
  /// Districts served (copies of the checkpoint's sensor graph).
  int64_t tiles = 1;
  /// Shard count; tiles are split in balanced contiguous ranges.
  int64_t shards = 1;
  /// Worker threads per shard server.
  int workers = 1;
  /// Per-shard batching policy (serve/batching_queue.h).
  int64_t max_batch = 8;
  int64_t max_delay_us = 2000;
  int64_t capacity = 4096;
  /// Default in-queue deadline for forecasts.
  int64_t deadline_us = 1'000'000;
  /// Weight precision tier for the shard sessions.
  simd::Precision precision = simd::Precision::kFp32;
  /// Run shard worker kernels serially (see ServerOptions::serial_kernels);
  /// on by default because a fleet node parallelises across shards.
  bool serial_kernels = true;
};

/// One immutable deployment of a checkpoint: version + metadata + the
/// shard servers answering with exactly these weights.
struct Generation {
  /// Monotone per-profile reload counter (1 = the initial load).
  int64_t version = 0;
  serve::ServingInfo info;
  /// On-disk format version word of the loaded file (nn/serialize).
  uint32_t format_version = 0;
  std::string checkpoint_path;
  std::vector<std::unique_ptr<serve::Server>> shards;
};

/// Timings and provenance of one completed hot reload.
struct ReloadResult {
  /// Generation number now serving.
  int64_t version = 0;
  /// ckpt_version metadata of the new file (producer provenance).
  int64_t ckpt_version = 0;
  /// Time building + validating the new generation (old one serving).
  double prepare_us = 0.0;
  /// Writer-lock hold time of the pointer swap — the only window where a
  /// forecast submission can block on the reload.
  double swap_us = 0.0;
  /// Time draining and retiring the old generation's queues.
  double drain_us = 0.0;
};

/// A sharded, hot-reloadable serving profile. Thread-safe.
class ModelProfile {
 public:
  /// Loads the checkpoint and starts generation 1 (shards * workers
  /// sessions). Throws on a bad checkpoint or config.
  explicit ModelProfile(FleetProfileConfig config);
  ~ModelProfile();

  ModelProfile(const ModelProfile&) = delete;
  ModelProfile& operator=(const ModelProfile&) = delete;

  const FleetProfileConfig& config() const { return config_; }
  const ShardRouter& router() const { return router_; }

  /// Checkpoint dims fixed for the profile's lifetime (a reload must
  /// match them; the horizon may change).
  int64_t num_sensors() const { return n_; }
  int64_t history() const { return history_; }
  int64_t features() const { return features_; }

  /// Snapshot of the serving generation's metadata.
  serve::ServingInfo Info() const;

  /// Serving generation number.
  int64_t Version() const;

  /// Appends one timestep for every sensor of `tile` ([N, F] row-major).
  void PushTile(int64_t tile, const std::vector<float>& observation);

  /// Appends one observation for global sensor `g` in
  /// [0, router().global_sensors()).
  void PushSensor(int64_t g, const float* values);

  /// True once every sensor of `tile` has a full history window.
  bool TileReady(int64_t tile) const;

  /// Warm-up progress of `tile` (smallest per-sensor count).
  int64_t TileMinFilled(int64_t tile) const;

  /// Enqueues a forecast for `tile` on its owning shard with the
  /// config deadline. Requires TileReady(tile).
  std::future<serve::Response> ForecastTile(int64_t tile);

  /// Swaps in `path` as the next generation (see file comment for the
  /// drain guarantee). Throws on a bad file — the old generation keeps
  /// serving. Concurrent reloads are serialized.
  ReloadResult Reload(const std::string& path);

  /// Per-shard statistics, each merged with that shard's retired
  /// generations (continuity across reloads).
  std::vector<serve::ServerStats> ShardStats() const;

  /// All shards merged into one snapshot, including the profile-level
  /// stream-cache counters (the profile owns the cache, so they are
  /// folded exactly once here, not per shard).
  serve::ServerStats Stats() const;

  /// The profile's shared stream cache (null when globally disabled). One
  /// cache spans all shards and survives reloads: worker outputs are
  /// interchangeable by the determinism contract, and Reload invalidates
  /// by generation so entries never outlive their weights.
  serve::StreamCache* stream_cache() const { return stream_cache_.get(); }

 private:
  std::shared_ptr<Generation> BuildGeneration(const std::string& path,
                                              int64_t version);

  FleetProfileConfig config_;
  ShardRouter router_;
  int64_t n_ = 0;
  int64_t history_ = 0;
  int64_t features_ = 0;

  /// Shared across every shard of every generation; entries are tagged
  /// with the generation that wrote them. Null when STWA_NO_STREAM_CACHE
  /// disabled the path at profile construction.
  std::shared_ptr<serve::StreamCache> stream_cache_;

  /// Guards gen_ swaps: forecasts hold it shared across the enqueue, a
  /// reload holds it exclusive only for the pointer exchange.
  mutable std::shared_mutex gen_mutex_;
  std::shared_ptr<Generation> gen_;

  /// Serializes reloads (builds happen outside gen_mutex_).
  std::mutex reload_mutex_;

  /// Tile rings, indexed by tile; guarded per shard.
  std::vector<serve::StreamState> tile_states_;
  mutable std::vector<std::unique_ptr<std::mutex>> shard_mutexes_;

  /// Stats of retired generations, per shard, plus generations still
  /// draining (their completions are merged live until the drain
  /// finishes, so Stats() never transiently under-reports mid-reload).
  /// Both guarded by retired_mutex_.
  mutable std::mutex retired_mutex_;
  std::vector<serve::ServerStats> retired_;
  std::vector<std::shared_ptr<Generation>> retiring_;
};

}  // namespace fleet
}  // namespace stwa

#endif  // STWA_FLEET_PROFILE_H_
