#include "fleet/shard_router.h"

#include "common/check.h"

namespace stwa {
namespace fleet {

ShardRouter::ShardRouter(int64_t num_sensors, int64_t tiles, int64_t shards)
    : n_(num_sensors), tiles_(tiles), shards_(shards) {
  STWA_CHECK(n_ > 0, "shard router needs num_sensors > 0, got ", n_);
  STWA_CHECK(tiles_ > 0, "shard router needs tiles > 0, got ", tiles_);
  STWA_CHECK(shards_ > 0 && shards_ <= tiles_, "shard count ", shards_,
             " must be in [1, tiles=", tiles_, "]");
}

}  // namespace fleet
}  // namespace stwa
