// Fleet wire protocol: the serve line protocol with a profile routing key
// in front, plus node-level commands.
//
// Profile-scoped commands (first token routes to a registry profile):
//   <profile> obs <tile> <v...>     push one timestep for every sensor of
//                                   a tile (num_sensors*features values)
//   <profile> obs1 <g> <v...>       push one observation for global
//                                   sensor g (features values)
//   <profile> forecast <tile>       -> "forecast ok=..." (serve format)
//                                   or "throttled tenant=... profile=..."
//   <profile> stats                 -> "stats ..." (serve format) plus
//                                   generation/shard fields
// Node commands:
//   profiles                        -> one line listing every profile
//   tenant <name>                   quota identity for this connection
//   reload <profile> <path>         hot-swap a profile's checkpoint
//   stats                           -> "fleetstats ..." node counters
//   quit                            -> "bye"
//
// Malformed lines get an "err ..." response and are counted — in the
// session (per-connection stats) and in the node (fleet-wide) — never a
// worker crash. Throttled forecasts have their own first token so
// token-oriented clients can split admits from rejections.

#ifndef STWA_FLEET_PROTOCOL_H_
#define STWA_FLEET_PROTOCOL_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

#include "fleet/admission.h"
#include "fleet/config.h"
#include "fleet/registry.h"
#include "metrics/latency.h"

namespace stwa {
namespace fleet {

/// Node-wide serving counters (across connections and profiles).
struct FleetNodeStats {
  int64_t admitted = 0;
  int64_t throttled = 0;
  int64_t protocol_errors = 0;
  /// Completed-forecast latency keyed by tenant, and by profile.
  metrics::LabeledHistograms per_tenant;
  metrics::LabeledHistograms per_profile;
};

/// One fleet serving node: the profile registry plus admission control
/// and node-level stats. Thread-safe; one instance per process, shared by
/// every connection's FleetLineSession.
class FleetNode {
 public:
  /// Loads every configured profile (concurrently) and installs the
  /// tenant quotas.
  explicit FleetNode(const FleetConfig& config);

  ModelRegistry& registry() { return registry_; }
  AdmissionController& admission() { return admission_; }

  /// Records one completed forecast's end-to-end latency.
  void RecordForecast(const std::string& tenant, const std::string& profile,
                      double micros);

  /// Counts one malformed client line.
  void CountProtocolError();

  FleetNodeStats Stats() const;

 private:
  ModelRegistry registry_;
  AdmissionController admission_;
  mutable std::mutex stats_mutex_;
  metrics::LabeledHistograms per_tenant_;
  metrics::LabeledHistograms per_profile_;
  int64_t protocol_errors_ = 0;
};

/// Per-connection command loop state (tenant identity + error counter).
/// Not thread-safe; transports create one per connection.
class FleetLineSession {
 public:
  explicit FleetLineSession(FleetNode& node,
                            std::string tenant = "default");

  /// Executes one protocol line. Returns the response line, or nullopt
  /// for blank/comment lines. Sets *quit on "quit".
  std::optional<std::string> Handle(const std::string& line, bool* quit);

  const std::string& tenant() const { return tenant_; }
  int64_t protocol_errors() const { return protocol_errors_; }

 private:
  /// Counts (session + node) and formats a protocol error.
  std::string Error(const std::string& reason);

  FleetNode& node_;
  std::string tenant_;
  int64_t protocol_errors_ = 0;
};

}  // namespace fleet
}  // namespace stwa

#endif  // STWA_FLEET_PROTOCOL_H_
