// Per-tenant admission control for the fleet serving node.
//
// Sits *above* the per-shard deadline shedding (serve/batching_queue):
// shedding protects the compute workers from overload that already got
// in, admission keeps an over-quota tenant from getting in at all. Each
// tenant holds a token bucket (rate tokens/second, `burst` cap); a
// forecast request consumes one token or is answered with a `throttled`
// protocol response without ever touching a shard queue. Time is passed
// in explicitly (microseconds) so tests can drive the refill clock.

#ifndef STWA_FLEET_ADMISSION_H_
#define STWA_FLEET_ADMISSION_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace stwa {
namespace fleet {

/// One tenant's refill policy. rate <= 0 means unlimited (every request
/// admitted, no tokens tracked).
struct TenantQuota {
  /// Tokens added per second.
  double rate = 0.0;
  /// Bucket capacity; also the initial fill, so a fresh tenant can burst.
  double burst = 1.0;
};

/// Continuous-refill token bucket.
class TokenBucket {
 public:
  explicit TokenBucket(TenantQuota quota);

  /// Consumes one token if available, refilling for the elapsed time
  /// since the previous call first. `now_us` must be monotone
  /// non-decreasing (steady-clock microseconds; tests pass values).
  bool TryAdmitAt(int64_t now_us);

  const TenantQuota& quota() const { return quota_; }
  double tokens() const { return tokens_; }

 private:
  TenantQuota quota_;
  double tokens_;
  int64_t last_us_ = 0;
  bool started_ = false;
};

/// Thread-safe tenant -> bucket map with admit/throttle counters.
class AdmissionController {
 public:
  /// `default_quota` applies to tenants without an explicit SetQuota;
  /// the default default is unlimited (rate 0), so a node with no quota
  /// config admits everything.
  explicit AdmissionController(TenantQuota default_quota = TenantQuota());

  /// Installs (or replaces) `tenant`'s quota; the bucket restarts full.
  void SetQuota(const std::string& tenant, TenantQuota quota);

  /// Admits or throttles one request for `tenant` at the current
  /// steady-clock time.
  bool TryAdmit(const std::string& tenant);

  /// Same with an explicit clock, for deterministic tests.
  bool TryAdmitAt(const std::string& tenant, int64_t now_us);

  int64_t admitted() const;
  int64_t throttled() const;

 private:
  /// Bucket for `tenant`, created from the default quota on first use.
  /// Caller holds mutex_.
  TokenBucket& BucketLocked(const std::string& tenant);

  mutable std::mutex mutex_;
  TenantQuota default_quota_;
  std::vector<std::pair<std::string, TokenBucket>> buckets_;
  int64_t admitted_ = 0;
  int64_t throttled_ = 0;
};

}  // namespace fleet
}  // namespace stwa

#endif  // STWA_FLEET_ADMISSION_H_
