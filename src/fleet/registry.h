// The fleet node's profile table: named serving profiles (city x
// precision), loaded concurrently at startup and looked up by the routing
// key clients prepend to protocol lines.
//
// The table itself is immutable after construction — profiles are not
// added or removed at runtime (a fleet rollout restarts the node with a
// new config) — so lookups are lock-free. Mutation happens *inside* a
// profile via its hot-reload path.

#ifndef STWA_FLEET_REGISTRY_H_
#define STWA_FLEET_REGISTRY_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "fleet/profile.h"

namespace stwa {
namespace fleet {

/// Immutable name -> ModelProfile table.
class ModelRegistry {
 public:
  /// Loads every profile, one loader thread each (checkpoint parsing and
  /// session opening dominate startup, and profiles are independent).
  /// Throws if any profile fails to load or two share a name.
  explicit ModelRegistry(std::vector<FleetProfileConfig> configs);

  /// Profile for `name`, or nullptr when unknown.
  ModelProfile* Find(const std::string& name);
  const ModelProfile* Find(const std::string& name) const;

  /// Profile for `name`; throws stwa::Error when unknown, listing the
  /// registered names.
  ModelProfile& Get(const std::string& name);

  /// Registered names in config order.
  std::vector<std::string> Names() const;

  size_t size() const { return profiles_.size(); }

  const std::vector<std::pair<std::string, std::unique_ptr<ModelProfile>>>&
  entries() const {
    return profiles_;
  }

 private:
  std::vector<std::pair<std::string, std::unique_ptr<ModelProfile>>>
      profiles_;
};

}  // namespace fleet
}  // namespace stwa

#endif  // STWA_FLEET_REGISTRY_H_
