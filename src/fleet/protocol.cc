#include "fleet/protocol.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "serve/protocol.h"

namespace stwa {
namespace fleet {
namespace {

bool ParseFloatToken(const std::string& token, float* out) {
  char* end = nullptr;
  *out = std::strtof(token.c_str(), &end);
  return end != nullptr && *end == '\0' && !token.empty();
}

bool ParseIntToken(const std::string& token, int64_t* out) {
  char* end = nullptr;
  *out = std::strtoll(token.c_str(), &end, 10);
  return end != nullptr && *end == '\0' && !token.empty();
}

std::string FormatMicros(double micros) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", micros);
  return buf;
}

/// Parses tokens[first..] as observation values; empty optional + `err`
/// set on a bad token.
bool ParseValues(const std::vector<std::string>& tokens, size_t first,
                 std::vector<float>* values, std::string* err) {
  values->reserve(tokens.size() - first);
  for (size_t i = first; i < tokens.size(); ++i) {
    float v;
    if (!ParseFloatToken(tokens[i], &v)) {
      *err = "bad value '" + tokens[i] + "'";
      return false;
    }
    values->push_back(v);
  }
  return true;
}

}  // namespace

FleetNode::FleetNode(const FleetConfig& config)
    : registry_(config.profiles), admission_(config.default_quota) {
  for (const auto& [tenant, quota] : config.quotas) {
    admission_.SetQuota(tenant, quota);
  }
}

void FleetNode::RecordForecast(const std::string& tenant,
                               const std::string& profile, double micros) {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  per_tenant_.Record(tenant, micros);
  per_profile_.Record(profile, micros);
}

void FleetNode::CountProtocolError() {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++protocol_errors_;
}

FleetNodeStats FleetNode::Stats() const {
  FleetNodeStats stats;
  stats.admitted = admission_.admitted();
  stats.throttled = admission_.throttled();
  std::lock_guard<std::mutex> lock(stats_mutex_);
  stats.protocol_errors = protocol_errors_;
  stats.per_tenant = per_tenant_;
  stats.per_profile = per_profile_;
  return stats;
}

FleetLineSession::FleetLineSession(FleetNode& node, std::string tenant)
    : node_(node), tenant_(std::move(tenant)) {}

std::string FleetLineSession::Error(const std::string& reason) {
  ++protocol_errors_;
  node_.CountProtocolError();
  return serve::FormatErrorResponse(reason);
}

std::optional<std::string> FleetLineSession::Handle(const std::string& line,
                                                    bool* quit) {
  std::vector<std::string> tokens;
  {
    std::istringstream iss(line);
    std::string tok;
    while (iss >> tok) tokens.push_back(tok);
  }
  if (tokens.empty() || tokens[0][0] == '#') return std::nullopt;
  const std::string& head = tokens[0];

  // --- node commands -----------------------------------------------------
  if (head == "quit" && tokens.size() == 1) {
    *quit = true;
    return "bye";
  }
  if (head == "tenant") {
    if (tokens.size() != 2) return Error("usage: tenant <name>");
    tenant_ = tokens[1];
    return "ok tenant=" + tenant_;
  }
  if (head == "profiles" && tokens.size() == 1) {
    std::ostringstream oss;
    oss << "profiles";
    for (const auto& [name, profile] : node_.registry().entries()) {
      const serve::ServingInfo info = profile->Info();
      oss << ' ' << name << ":gen=" << profile->Version()
          << ":ckpt_version=" << info.ckpt_version
          << ":sensors=" << profile->router().global_sensors()
          << ":shards=" << profile->router().shards()
          << ":precision=" << simd::PrecisionName(
                 profile->config().precision);
    }
    return oss.str();
  }
  if (head == "reload") {
    if (tokens.size() != 3) return Error("usage: reload <profile> <path>");
    ModelProfile* profile = node_.registry().Find(tokens[1]);
    if (profile == nullptr) return Error("unknown profile '" + tokens[1] + "'");
    try {
      const ReloadResult r = profile->Reload(tokens[2]);
      std::ostringstream oss;
      oss << "reload ok=1 profile=" << tokens[1] << " version=" << r.version
          << " ckpt_version=" << r.ckpt_version
          << " prepare_us=" << FormatMicros(r.prepare_us)
          << " swap_us=" << FormatMicros(r.swap_us)
          << " drain_us=" << FormatMicros(r.drain_us);
      return oss.str();
    } catch (const std::exception& e) {
      // A failed reload is not a protocol error: the line was well-formed
      // and the old generation keeps serving.
      return "reload ok=0 profile=" + tokens[1] + " " +
             serve::FormatErrorResponse(e.what());
    }
  }
  if (head == "stats" && tokens.size() == 1) {
    const FleetNodeStats stats = node_.Stats();
    std::ostringstream oss;
    oss << "fleetstats admitted=" << stats.admitted
        << " throttled=" << stats.throttled
        << " protocol_errors=" << stats.protocol_errors
        << " profiles=" << node_.registry().size();
    for (const auto& [tenant, hist] : stats.per_tenant.entries()) {
      oss << " t." << tenant << ".count=" << hist.count() << " t." << tenant
          << ".p50_us=" << FormatMicros(hist.p50()) << " t." << tenant
          << ".p99_us=" << FormatMicros(hist.p99());
    }
    return oss.str();
  }

  // --- profile-scoped commands -------------------------------------------
  ModelProfile* profile = node_.registry().Find(head);
  if (profile == nullptr) {
    return Error("unknown command or profile '" + head + "'");
  }
  if (tokens.size() < 2) {
    return Error("usage: " + head + " obs|obs1|forecast|stats ...");
  }
  const std::string& verb = tokens[1];

  if (verb == "obs") {
    int64_t tile;
    if (tokens.size() < 4 || !ParseIntToken(tokens[2], &tile)) {
      return Error("usage: " + head + " obs <tile> <value...>");
    }
    if (tile < 0 || tile >= profile->router().tiles()) {
      return Error("tile " + std::to_string(tile) + " out of range [0, " +
                   std::to_string(profile->router().tiles()) + ")");
    }
    std::vector<float> values;
    std::string err;
    if (!ParseValues(tokens, 3, &values, &err)) return Error(err);
    const int64_t expected = profile->num_sensors() * profile->features();
    if (static_cast<int64_t>(values.size()) != expected) {
      return Error("obs needs " + std::to_string(expected) +
                   " values, got " + std::to_string(values.size()));
    }
    profile->PushTile(tile, values);
    return "ok";
  }

  if (verb == "obs1") {
    int64_t g;
    if (tokens.size() < 4 || !ParseIntToken(tokens[2], &g)) {
      return Error("usage: " + head + " obs1 <sensor> <value...>");
    }
    if (g < 0 || g >= profile->router().global_sensors()) {
      return Error("sensor " + std::to_string(g) + " out of range [0, " +
                   std::to_string(profile->router().global_sensors()) + ")");
    }
    std::vector<float> values;
    std::string err;
    if (!ParseValues(tokens, 3, &values, &err)) return Error(err);
    if (static_cast<int64_t>(values.size()) != profile->features()) {
      return Error("obs1 needs " + std::to_string(profile->features()) +
                   " value(s), got " + std::to_string(values.size()));
    }
    profile->PushSensor(g, values.data());
    return "ok";
  }

  if (verb == "forecast") {
    int64_t tile;
    if (tokens.size() != 3 || !ParseIntToken(tokens[2], &tile)) {
      return Error("usage: " + head + " forecast <tile>");
    }
    if (tile < 0 || tile >= profile->router().tiles()) {
      return Error("tile " + std::to_string(tile) + " out of range [0, " +
                   std::to_string(profile->router().tiles()) + ")");
    }
    if (!node_.admission().TryAdmit(tenant_)) {
      return "throttled tenant=" + tenant_ + " profile=" + head;
    }
    if (!profile->TileReady(tile)) {
      return "forecast ok=0 degraded=0 err=warming_up_have_" +
             std::to_string(profile->TileMinFilled(tile)) + "_of_" +
             std::to_string(profile->history());
    }
    Stopwatch sw;
    serve::Response resp = profile->ForecastTile(tile).get();
    if (resp.ok) {
      node_.RecordForecast(tenant_, head, sw.ElapsedSeconds() * 1e6);
    }
    const serve::ServingInfo info = profile->Info();
    return serve::FormatForecastResponse(resp, info.num_sensors,
                                         info.settings.horizon,
                                         info.num_features);
  }

  if (verb == "stats" && tokens.size() == 2) {
    const serve::ServerStats stats = profile->Stats();
    const serve::ServingInfo info = profile->Info();
    std::ostringstream oss;
    oss << serve::FormatStatsResponse(stats)
        << " gen=" << profile->Version()
        << " ckpt_version=" << info.ckpt_version
        << " shards=" << profile->router().shards();
    const std::vector<serve::ServerStats> shards = profile->ShardStats();
    for (size_t k = 0; k < shards.size(); ++k) {
      oss << " s" << k << ".completed=" << shards[k].completed;
    }
    return oss.str();
  }

  return Error("unknown command '" + verb + "' for profile '" + head + "'");
}

}  // namespace fleet
}  // namespace stwa
