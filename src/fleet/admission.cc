#include "fleet/admission.h"

#include <algorithm>
#include <chrono>

namespace stwa {
namespace fleet {

TokenBucket::TokenBucket(TenantQuota quota)
    : quota_(quota), tokens_(std::max(quota.burst, 0.0)) {}

bool TokenBucket::TryAdmitAt(int64_t now_us) {
  if (quota_.rate <= 0.0) return true;
  if (!started_) {
    started_ = true;
    last_us_ = now_us;
  }
  const int64_t elapsed_us = std::max<int64_t>(0, now_us - last_us_);
  last_us_ = now_us;
  tokens_ = std::min(quota_.burst,
                     tokens_ + quota_.rate * 1e-6 *
                                   static_cast<double>(elapsed_us));
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

AdmissionController::AdmissionController(TenantQuota default_quota)
    : default_quota_(default_quota) {}

void AdmissionController::SetQuota(const std::string& tenant,
                                   TenantQuota quota) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, bucket] : buckets_) {
    if (name == tenant) {
      bucket = TokenBucket(quota);
      return;
    }
  }
  buckets_.emplace_back(tenant, TokenBucket(quota));
}

bool AdmissionController::TryAdmit(const std::string& tenant) {
  const int64_t now_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  return TryAdmitAt(tenant, now_us);
}

bool AdmissionController::TryAdmitAt(const std::string& tenant,
                                     int64_t now_us) {
  std::lock_guard<std::mutex> lock(mutex_);
  const bool ok = BucketLocked(tenant).TryAdmitAt(now_us);
  if (ok) {
    ++admitted_;
  } else {
    ++throttled_;
  }
  return ok;
}

int64_t AdmissionController::admitted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return admitted_;
}

int64_t AdmissionController::throttled() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return throttled_;
}

TokenBucket& AdmissionController::BucketLocked(const std::string& tenant) {
  for (auto& [name, bucket] : buckets_) {
    if (name == tenant) return bucket;
  }
  buckets_.emplace_back(tenant, TokenBucket(default_quota_));
  return buckets_.back().second;
}

}  // namespace fleet
}  // namespace stwa
