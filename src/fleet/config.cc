#include "fleet/config.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/check.h"
#include "common/string_util.h"

namespace stwa {
namespace fleet {
namespace {

int64_t ParseInt(const std::string& value, const std::string& line) {
  char* end = nullptr;
  const long long v = std::strtoll(value.c_str(), &end, 10);
  STWA_CHECK(end != nullptr && *end == '\0' && !value.empty(),
             "fleet config: '", value, "' is not an integer in line '",
             line, "'");
  return static_cast<int64_t>(v);
}

double ParseDouble(const std::string& value, const std::string& line) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  STWA_CHECK(end != nullptr && *end == '\0' && !value.empty(),
             "fleet config: '", value, "' is not a number in line '", line,
             "'");
  return v;
}

/// Splits "key=value"; throws when there is no '='.
std::pair<std::string, std::string> SplitOption(const std::string& token,
                                                const std::string& line) {
  const size_t eq = token.find('=');
  STWA_CHECK(eq != std::string::npos && eq > 0,
             "fleet config: expected key=value, got '", token,
             "' in line '", line, "'");
  return {token.substr(0, eq), token.substr(eq + 1)};
}

FleetProfileConfig ParseProfileLine(const std::vector<std::string>& tokens,
                                    const std::string& line) {
  STWA_CHECK(tokens.size() >= 3,
             "fleet config: profile needs a name and ckpt=..., line '",
             line, "'");
  FleetProfileConfig profile;
  profile.name = tokens[1];
  for (size_t i = 2; i < tokens.size(); ++i) {
    const auto [key, value] = SplitOption(tokens[i], line);
    if (key == "ckpt") {
      profile.checkpoint = value;
    } else if (key == "tiles") {
      profile.tiles = ParseInt(value, line);
    } else if (key == "shards") {
      profile.shards = ParseInt(value, line);
    } else if (key == "workers") {
      profile.workers = static_cast<int>(ParseInt(value, line));
    } else if (key == "max_batch") {
      profile.max_batch = ParseInt(value, line);
    } else if (key == "max_delay_us") {
      profile.max_delay_us = ParseInt(value, line);
    } else if (key == "capacity") {
      profile.capacity = ParseInt(value, line);
    } else if (key == "deadline_us") {
      profile.deadline_us = ParseInt(value, line);
    } else if (key == "precision") {
      profile.precision = simd::ParsePrecision(value);
    } else if (key == "serial_kernels") {
      profile.serial_kernels = ParseInt(value, line) != 0;
    } else {
      STWA_FAIL("fleet config: unknown profile option '", key,
                "' in line '", line, "'");
    }
  }
  STWA_CHECK(!profile.checkpoint.empty(),
             "fleet config: profile '", profile.name,
             "' needs ckpt=<path>, line '", line, "'");
  return profile;
}

TenantQuota ParseQuotaOptions(const std::vector<std::string>& tokens,
                              size_t first, const std::string& line) {
  TenantQuota quota;
  bool have_rate = false;
  for (size_t i = first; i < tokens.size(); ++i) {
    const auto [key, value] = SplitOption(tokens[i], line);
    if (key == "rate") {
      quota.rate = ParseDouble(value, line);
      have_rate = true;
    } else if (key == "burst") {
      quota.burst = ParseDouble(value, line);
    } else {
      STWA_FAIL("fleet config: unknown quota option '", key,
                "' in line '", line, "'");
    }
  }
  STWA_CHECK(have_rate, "fleet config: quota needs rate=..., line '", line,
             "'");
  if (quota.burst < 1.0 && quota.rate > 0.0) quota.burst = 1.0;
  return quota;
}

}  // namespace

FleetConfig ParseFleetConfig(const std::string& text) {
  FleetConfig config;
  std::istringstream in(text);
  std::string raw;
  while (std::getline(in, raw)) {
    const std::string line = Trim(raw);
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> tokens;
    {
      std::istringstream iss(line);
      std::string tok;
      while (iss >> tok) tokens.push_back(tok);
    }
    const std::string& directive = tokens[0];
    if (directive == "profile") {
      config.profiles.push_back(ParseProfileLine(tokens, line));
    } else if (directive == "quota") {
      STWA_CHECK(tokens.size() >= 3,
                 "fleet config: quota needs a tenant and rate=..., line '",
                 line, "'");
      config.quotas.emplace_back(tokens[1],
                                 ParseQuotaOptions(tokens, 2, line));
    } else if (directive == "default_quota") {
      config.default_quota = ParseQuotaOptions(tokens, 1, line);
    } else {
      STWA_FAIL("fleet config: unknown directive '", directive,
                "' in line '", line, "'");
    }
  }
  return config;
}

FleetConfig LoadFleetConfig(const std::string& path) {
  std::ifstream in(path);
  STWA_CHECK(in.good(), "cannot open fleet config '", path, "'");
  std::ostringstream text;
  text << in.rdbuf();
  return ParseFleetConfig(text.str());
}

}  // namespace fleet
}  // namespace stwa
