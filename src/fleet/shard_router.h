// Static sharding of a profile's sensor space.
//
// A fleet profile serves `tiles` independent copies ("districts") of its
// checkpoint's N-sensor graph — the global sensor space is tiles * N
// streams. Tiles are partitioned across K shards in balanced contiguous
// ranges; each shard owns its tiles' StreamState rings and one
// serve::Server (queue + workers), so routing a request is pure index
// arithmetic with no shared state. The split is the standard balanced
// formula: shard k owns tiles [k*T/K, (k+1)*T/K), computed without
// floating point.

#ifndef STWA_FLEET_SHARD_ROUTER_H_
#define STWA_FLEET_SHARD_ROUTER_H_

#include <cstdint>

namespace stwa {
namespace fleet {

/// Immutable tile/shard index arithmetic for one profile.
class ShardRouter {
 public:
  /// `num_sensors` per tile, `tiles` >= 1 districts, `shards` in
  /// [1, tiles].
  ShardRouter(int64_t num_sensors, int64_t tiles, int64_t shards);

  int64_t num_sensors() const { return n_; }
  int64_t tiles() const { return tiles_; }
  int64_t shards() const { return shards_; }

  /// Streams across the whole profile (tiles * num_sensors).
  int64_t global_sensors() const { return tiles_ * n_; }

  /// Tile owning global sensor index `g` in [0, global_sensors()).
  int64_t SensorToTile(int64_t g) const { return g / n_; }

  /// Local sensor index of `g` inside its tile.
  int64_t SensorInTile(int64_t g) const { return g % n_; }

  /// Shard owning `tile`.
  int64_t TileToShard(int64_t tile) const {
    return ((tile + 1) * shards_ - 1) / tiles_;
  }

  /// First tile of `shard`.
  int64_t ShardBegin(int64_t shard) const {
    return shard * tiles_ / shards_;
  }

  /// One past the last tile of `shard`.
  int64_t ShardEnd(int64_t shard) const {
    return (shard + 1) * tiles_ / shards_;
  }

  /// Tiles owned by `shard`.
  int64_t ShardTileCount(int64_t shard) const {
    return ShardEnd(shard) - ShardBegin(shard);
  }

  /// Index of `tile` within its shard's contiguous range.
  int64_t TileInShard(int64_t tile) const {
    return tile - ShardBegin(TileToShard(tile));
  }

 private:
  int64_t n_;
  int64_t tiles_;
  int64_t shards_;
};

}  // namespace fleet
}  // namespace stwa

#endif  // STWA_FLEET_SHARD_ROUTER_H_
