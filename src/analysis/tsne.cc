#include "analysis/tsne.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"

namespace stwa {
namespace analysis {
namespace {

/// Binary-searches the Gaussian bandwidth of row i so the conditional
/// distribution's perplexity matches the target; fills p_cond[i*n + j].
void FitRowAffinities(const std::vector<double>& sq_dist, int64_t n,
                      int64_t i, double perplexity,
                      std::vector<double>& p_cond) {
  const double target_entropy = std::log(perplexity);
  double beta = 1.0;
  double beta_lo = 0.0;
  double beta_hi = std::numeric_limits<double>::max();
  for (int iter = 0; iter < 60; ++iter) {
    double sum = 0.0;
    for (int64_t j = 0; j < n; ++j) {
      if (j == i) continue;
      sum += std::exp(-beta * sq_dist[i * n + j]);
    }
    sum = std::max(sum, 1e-12);
    double entropy = 0.0;
    for (int64_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const double pj = std::exp(-beta * sq_dist[i * n + j]) / sum;
      if (pj > 1e-12) entropy -= pj * std::log(pj);
      p_cond[i * n + j] = pj;
    }
    const double diff = entropy - target_entropy;
    if (std::fabs(diff) < 1e-5) break;
    if (diff > 0) {
      beta_lo = beta;
      beta = beta_hi == std::numeric_limits<double>::max()
                 ? beta * 2.0
                 : 0.5 * (beta_lo + beta_hi);
    } else {
      beta_hi = beta;
      beta = 0.5 * (beta_lo + beta_hi);
    }
  }
}

}  // namespace

Tensor Tsne(const Tensor& x, const TsneOptions& options) {
  STWA_CHECK(x.rank() == 2, "Tsne expects [n, d]");
  const int64_t n = x.dim(0);
  const int64_t d = x.dim(1);
  const int64_t out_d = options.output_dims;
  STWA_CHECK(n >= 2, "need at least two points");
  STWA_CHECK(options.perplexity < n, "perplexity must be < n");

  // Pairwise squared distances in the input space.
  std::vector<double> sq_dist(n * n, 0.0);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) {
      double acc = 0.0;
      for (int64_t f = 0; f < d; ++f) {
        const double diff = x({i, f}) - x({j, f});
        acc += diff * diff;
      }
      sq_dist[i * n + j] = acc;
      sq_dist[j * n + i] = acc;
    }
  }
  // Symmetrised affinities P.
  std::vector<double> p_cond(n * n, 0.0);
  for (int64_t i = 0; i < n; ++i) {
    FitRowAffinities(sq_dist, n, i, options.perplexity, p_cond);
  }
  std::vector<double> p(n * n, 0.0);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      p[i * n + j] =
          std::max((p_cond[i * n + j] + p_cond[j * n + i]) / (2.0 * n),
                   1e-12);
    }
  }

  // Initialise embedding with small Gaussian noise.
  Rng rng(options.seed);
  std::vector<double> y(n * out_d);
  std::vector<double> velocity(n * out_d, 0.0);
  for (auto& v : y) v = 1e-2 * rng.Normal();

  std::vector<double> q(n * n);
  std::vector<double> grad(n * out_d);
  const int64_t exaggeration_end = options.iterations / 4;
  for (int64_t iter = 0; iter < options.iterations; ++iter) {
    const double exaggeration =
        iter < exaggeration_end ? options.exaggeration : 1.0;
    // Student-t affinities Q.
    double q_sum = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = i + 1; j < n; ++j) {
        double acc = 0.0;
        for (int64_t f = 0; f < out_d; ++f) {
          const double diff = y[i * out_d + f] - y[j * out_d + f];
          acc += diff * diff;
        }
        const double w = 1.0 / (1.0 + acc);
        q[i * n + j] = w;
        q[j * n + i] = w;
        q_sum += 2.0 * w;
      }
      q[i * n + i] = 0.0;
    }
    q_sum = std::max(q_sum, 1e-12);
    // Gradient.
    std::fill(grad.begin(), grad.end(), 0.0);
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        if (j == i) continue;
        const double w = q[i * n + j];
        const double coeff =
            4.0 * (exaggeration * p[i * n + j] - w / q_sum) * w;
        for (int64_t f = 0; f < out_d; ++f) {
          grad[i * out_d + f] +=
              coeff * (y[i * out_d + f] - y[j * out_d + f]);
        }
      }
    }
    // Momentum update.
    for (int64_t idx = 0; idx < n * out_d; ++idx) {
      velocity[idx] = options.momentum * velocity[idx] -
                      options.learning_rate * grad[idx];
      y[idx] += velocity[idx];
    }
    // Re-centre to keep the embedding bounded.
    for (int64_t f = 0; f < out_d; ++f) {
      double mean = 0.0;
      for (int64_t i = 0; i < n; ++i) mean += y[i * out_d + f];
      mean /= n;
      for (int64_t i = 0; i < n; ++i) y[i * out_d + f] -= mean;
    }
  }

  Tensor out(Shape{n, out_d});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t f = 0; f < out_d; ++f) {
      out({i, f}) = static_cast<float>(y[i * out_d + f]);
    }
  }
  return out;
}

}  // namespace analysis
}  // namespace stwa
