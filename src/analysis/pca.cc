#include "analysis/pca.h"

#include <cmath>
#include <vector>

#include "common/check.h"
#include "tensor/ops.h"

namespace stwa {
namespace analysis {

Tensor Pca(const Tensor& x, int64_t components, int64_t iterations) {
  STWA_CHECK(x.rank() == 2, "Pca expects [n, d]");
  const int64_t n = x.dim(0);
  const int64_t d = x.dim(1);
  STWA_CHECK(components >= 1 && components <= d, "bad component count");
  // Centre the data.
  Tensor mean = ops::Mean(x, 0, /*keepdims=*/true);
  Tensor centred = ops::Sub(x, mean);
  // Covariance [d, d].
  Tensor cov = ops::MulScalar(
      ops::MatMul2D(ops::TransposeLast2(centred), centred),
      1.0f / static_cast<float>(std::max<int64_t>(1, n - 1)));

  std::vector<std::vector<float>> dirs;
  for (int64_t c = 0; c < components; ++c) {
    // Deterministic start: unit vector along axis c (plus tiny spread).
    std::vector<float> v(d, 1e-3f);
    v[c % d] = 1.0f;
    for (int64_t it = 0; it < iterations; ++it) {
      // w = C v, then orthogonalise against earlier directions.
      std::vector<float> w(d, 0.0f);
      for (int64_t i = 0; i < d; ++i) {
        float acc = 0.0f;
        for (int64_t j = 0; j < d; ++j) acc += cov({i, j}) * v[j];
        w[i] = acc;
      }
      for (const auto& u : dirs) {
        float dot = 0.0f;
        for (int64_t i = 0; i < d; ++i) dot += w[i] * u[i];
        for (int64_t i = 0; i < d; ++i) w[i] -= dot * u[i];
      }
      float norm = 0.0f;
      for (float wi : w) norm += wi * wi;
      norm = std::sqrt(norm);
      if (norm < 1e-12f) break;
      for (int64_t i = 0; i < d; ++i) v[i] = w[i] / norm;
    }
    dirs.push_back(v);
  }
  Tensor out(Shape{n, components});
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t c = 0; c < components; ++c) {
      float acc = 0.0f;
      for (int64_t j = 0; j < d; ++j) acc += centred({r, j}) * dirs[c][j];
      out({r, c}) = acc;
    }
  }
  return out;
}

}  // namespace analysis
}  // namespace stwa
