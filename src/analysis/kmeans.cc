#include "analysis/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "common/check.h"

namespace stwa {
namespace analysis {
namespace {

double SquaredDistance(const Tensor& x, int64_t row, const Tensor& c,
                       int64_t centroid) {
  const int64_t d = x.dim(1);
  double acc = 0.0;
  for (int64_t j = 0; j < d; ++j) {
    const double diff = x({row, j}) - c({centroid, j});
    acc += diff * diff;
  }
  return acc;
}

}  // namespace

KMeansResult KMeans(const Tensor& x, int64_t k, Rng& rng,
                    int64_t max_iters) {
  STWA_CHECK(x.rank() == 2, "KMeans expects [n, d]");
  const int64_t n = x.dim(0);
  const int64_t d = x.dim(1);
  STWA_CHECK(k >= 1 && k <= n, "bad cluster count k=", k, " for n=", n);

  // k-means++ seeding.
  Tensor centroids(Shape{k, d});
  std::vector<double> min_dist(n, std::numeric_limits<double>::max());
  int64_t first = rng.UniformInt(n);
  for (int64_t j = 0; j < d; ++j) centroids({0, j}) = x({first, j});
  for (int64_t c = 1; c < k; ++c) {
    double total = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      min_dist[i] = std::min(min_dist[i], SquaredDistance(x, i, centroids,
                                                          c - 1));
      total += min_dist[i];
    }
    double target = rng.Uniform() * total;
    int64_t chosen = n - 1;
    double acc = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      acc += min_dist[i];
      if (acc >= target) {
        chosen = i;
        break;
      }
    }
    for (int64_t j = 0; j < d; ++j) centroids({c, j}) = x({chosen, j});
  }

  KMeansResult result;
  result.assignment.assign(n, 0);
  for (int64_t iter = 0; iter < max_iters; ++iter) {
    bool changed = false;
    // Assign.
    for (int64_t i = 0; i < n; ++i) {
      int best = 0;
      double best_dist = SquaredDistance(x, i, centroids, 0);
      for (int64_t c = 1; c < k; ++c) {
        const double dist = SquaredDistance(x, i, centroids, c);
        if (dist < best_dist) {
          best_dist = dist;
          best = static_cast<int>(c);
        }
      }
      if (result.assignment[i] != best) {
        result.assignment[i] = best;
        changed = true;
      }
    }
    // Update.
    Tensor sums(Shape{k, d});
    std::vector<int64_t> counts(k, 0);
    for (int64_t i = 0; i < n; ++i) {
      const int c = result.assignment[i];
      ++counts[c];
      for (int64_t j = 0; j < d; ++j) sums({c, j}) += x({i, j});
    }
    for (int64_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // keep the old centroid
      for (int64_t j = 0; j < d; ++j) {
        centroids({c, j}) = sums({c, j}) / counts[c];
      }
    }
    if (!changed) break;
  }
  result.centroids = centroids;
  result.inertia = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    result.inertia += SquaredDistance(x, i, centroids,
                                      result.assignment[i]);
  }
  return result;
}

double ClusterPurity(const std::vector<int>& assignment,
                     const std::vector<int>& labels) {
  STWA_CHECK(assignment.size() == labels.size() && !assignment.empty(),
             "purity inputs must be same-sized and non-empty");
  // Majority label per cluster.
  std::map<int, std::map<int, int>> counts;
  for (size_t i = 0; i < assignment.size(); ++i) {
    counts[assignment[i]][labels[i]]++;
  }
  int64_t correct = 0;
  for (const auto& [cluster, label_counts] : counts) {
    int best = 0;
    for (const auto& [label, count] : label_counts) {
      best = std::max(best, count);
    }
    correct += best;
  }
  return static_cast<double>(correct) / assignment.size();
}

double Silhouette(const Tensor& x, const std::vector<int>& assignment) {
  STWA_CHECK(x.rank() == 2 &&
                 static_cast<size_t>(x.dim(0)) == assignment.size(),
             "silhouette inputs mismatch");
  const int64_t n = x.dim(0);
  const int64_t d = x.dim(1);
  const int k = *std::max_element(assignment.begin(), assignment.end()) + 1;
  auto dist = [&](int64_t a, int64_t b) {
    double acc = 0.0;
    for (int64_t j = 0; j < d; ++j) {
      const double diff = x({a, j}) - x({b, j});
      acc += diff * diff;
    }
    return std::sqrt(acc);
  };
  double total = 0.0;
  int64_t counted = 0;
  for (int64_t i = 0; i < n; ++i) {
    std::vector<double> mean_dist(k, 0.0);
    std::vector<int64_t> counts(k, 0);
    for (int64_t j = 0; j < n; ++j) {
      if (j == i) continue;
      mean_dist[assignment[j]] += dist(i, j);
      ++counts[assignment[j]];
    }
    const int own = assignment[i];
    if (counts[own] == 0) continue;  // singleton cluster
    const double a = mean_dist[own] / counts[own];
    double b = std::numeric_limits<double>::max();
    for (int c = 0; c < k; ++c) {
      if (c == own || counts[c] == 0) continue;
      b = std::min(b, mean_dist[c] / counts[c]);
    }
    if (b == std::numeric_limits<double>::max()) continue;
    total += (b - a) / std::max(a, b);
    ++counted;
  }
  return counted > 0 ? total / counted : 0.0;
}

}  // namespace analysis
}  // namespace stwa
