// Lloyd's k-means with k-means++ seeding, plus cluster quality measures
// used by the Figure 9 analysis (cluster purity against road labels,
// silhouette score).

#ifndef STWA_ANALYSIS_KMEANS_H_
#define STWA_ANALYSIS_KMEANS_H_

#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace stwa {
namespace analysis {

/// k-means result.
struct KMeansResult {
  std::vector<int> assignment;  // cluster index per row
  Tensor centroids;             // [k, d]
  double inertia = 0.0;         // sum of squared distances to centroids
};

/// Clusters the rows of X [n, d] into k clusters.
KMeansResult KMeans(const Tensor& x, int64_t k, Rng& rng,
                    int64_t max_iters = 100);

/// Fraction of points whose cluster's majority label matches their own.
double ClusterPurity(const std::vector<int>& assignment,
                     const std::vector<int>& labels);

/// Mean silhouette coefficient in [-1, 1]; higher = better separated.
double Silhouette(const Tensor& x, const std::vector<int>& assignment);

}  // namespace analysis
}  // namespace stwa

#endif  // STWA_ANALYSIS_KMEANS_H_
