// Principal component analysis via power iteration with deflation.

#ifndef STWA_ANALYSIS_PCA_H_
#define STWA_ANALYSIS_PCA_H_

#include "tensor/tensor.h"

namespace stwa {
namespace analysis {

/// Projects rows of X [n, d] onto the top `components` principal
/// directions; returns [n, components]. Deterministic (fixed start
/// vectors + power iteration).
Tensor Pca(const Tensor& x, int64_t components, int64_t iterations = 100);

}  // namespace analysis
}  // namespace stwa

#endif  // STWA_ANALYSIS_PCA_H_
