// Exact t-SNE [van der Maaten & Hinton, JMLR 2008], used by the Figure 9
// visualisation of the learned stochastic variables and generated
// projection matrices. O(n^2) per iteration, appropriate for the sensor
// counts used here.

#ifndef STWA_ANALYSIS_TSNE_H_
#define STWA_ANALYSIS_TSNE_H_

#include "common/rng.h"
#include "tensor/tensor.h"

namespace stwa {
namespace analysis {

/// t-SNE options.
struct TsneOptions {
  int64_t output_dims = 2;
  double perplexity = 10.0;
  int64_t iterations = 500;
  double learning_rate = 100.0;
  double momentum = 0.8;
  /// Early exaggeration factor applied for the first quarter of the run.
  double exaggeration = 4.0;
  uint64_t seed = 1;
};

/// Embeds the rows of X [n, d] into `output_dims` dimensions.
Tensor Tsne(const Tensor& x, const TsneOptions& options = {});

}  // namespace analysis
}  // namespace stwa

#endif  // STWA_ANALYSIS_TSNE_H_
